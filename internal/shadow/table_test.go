package shadow

import (
	"testing"
)

// auditTable checks structural invariants: live matches the used slots,
// no address appears twice, and every used slot is reachable by probing
// from its home slot (backward-shift deletion must never strand one).
func auditTable(t *testing.T, tab *table) {
	t.Helper()
	used := 0
	seen := make(map[uint64]bool)
	for i := range tab.flags {
		if tab.flags[i] == 0 {
			continue
		}
		used++
		addr := tab.keys[i]
		if seen[addr] {
			t.Fatalf("address %#x stored twice", addr)
		}
		seen[addr] = true
		// Probe from the home slot: we must hit this cell before any
		// empty slot.
		idx := tab.slot(addr)
		for {
			if tab.flags[idx] == 0 {
				t.Fatalf("address %#x stranded: probe chain hit an empty slot", addr)
			}
			if tab.keys[idx] == addr {
				break
			}
			idx = (idx + 1) & tab.mask
		}
	}
	if used != tab.live {
		t.Fatalf("live = %d but %d slots are used", tab.live, used)
	}
	// Side state may only exist for live addresses.
	for addr := range tab.multi {
		if !seen[addr] {
			t.Fatalf("read-share list leaked for dead address %#x", addr)
		}
	}
	for addr := range tab.evs {
		if !seen[addr] {
			t.Fatalf("evidence leaked for dead address %#x", addr)
		}
	}
}

func TestTableInsertLookupGrow(t *testing.T) {
	tab := newTable(0, nil)
	const n = 10_000
	for i := uint64(1); i <= n; i++ {
		idx := tab.cell(i * 8)
		if tab.flags[idx] != cellUsed {
			t.Fatalf("fresh cell for %#x has flags %#x", i*8, tab.flags[idx])
		}
		tab.data[idx].w.seq = i // marker
		tab.flags[idx] |= cellWrite
	}
	if tab.live != n {
		t.Fatalf("live = %d, want %d", tab.live, n)
	}
	if tab.evictions != 0 {
		t.Fatalf("unbounded table evicted %d cells", tab.evictions)
	}
	for i := uint64(1); i <= n; i++ {
		idx := tab.cell(i * 8)
		if tab.data[idx].w.seq != i {
			t.Fatalf("cell %#x lost its state across growth: seq = %d, want %d",
				i*8, tab.data[idx].w.seq, i)
		}
	}
	if tab.live != n {
		t.Fatalf("lookups created cells: live = %d, want %d", tab.live, n)
	}
	auditTable(t, &tab)
}

func TestTableFindHomeSlot(t *testing.T) {
	tab := newTable(0, nil)
	if got := tab.find(0x1234); got != -1 {
		t.Fatalf("find on an empty table returned slot %d", got)
	}
	idx := tab.cell(0x1234)
	if got := tab.find(0x1234); got >= 0 && got != idx {
		t.Fatalf("find returned slot %d, cell claimed %d", got, idx)
	}
	// find is allowed to miss on displaced cells but must never claim a
	// slot whose key differs.
	for i := uint64(1); i <= 1000; i++ {
		tab.cell(i * 31)
	}
	for i := uint64(1); i <= 1000; i++ {
		addr := i * 31
		if got := tab.find(addr); got >= 0 && tab.keys[got] != addr {
			t.Fatalf("find(%#x) returned slot %d holding %#x", addr, got, tab.keys[got])
		}
	}
}

func TestTableEvictionAccounting(t *testing.T) {
	tab := newTable(4, nil)
	for i := uint64(1); i <= 10; i++ {
		tab.cell(i << 4)
	}
	if tab.live != 4 {
		t.Fatalf("live = %d at bound 4", tab.live)
	}
	if tab.evictions != 6 {
		t.Fatalf("evictions = %d, want 6 (10 inserts into a 4-cell table)", tab.evictions)
	}
	auditTable(t, &tab)
	// Re-touching a survivor must not evict.
	before := tab.evictions
	for i := range tab.flags {
		if tab.flags[i] != 0 {
			tab.cell(tab.keys[i])
		}
	}
	if tab.evictions != before {
		t.Fatalf("lookups of live addresses evicted: %d -> %d", before, tab.evictions)
	}
	if tab.live != 4 {
		t.Fatalf("live = %d after re-lookups", tab.live)
	}
}

func TestTableEvictionNeverEvictsNewcomer(t *testing.T) {
	// Each insert at the bound must keep the address just inserted: the
	// sweep skips the claimed slot (and follows it if compaction moved
	// it).
	tab := newTable(2, nil)
	for i := uint64(1); i <= 64; i++ {
		addr := i * 104729 // spread across slots
		tab.cell(addr)
		found := false
		for j := range tab.flags {
			if tab.flags[j] != 0 && tab.keys[j] == addr {
				found = true
			}
		}
		if !found {
			t.Fatalf("insert %d: newcomer %#x was evicted immediately", i, addr)
		}
		auditTable(t, &tab)
	}
	if tab.evictions != 62 {
		t.Fatalf("evictions = %d, want 62", tab.evictions)
	}
}

func TestTableEvictionDeterministic(t *testing.T) {
	run := func() (uint64, []uint64) {
		tab := newTable(8, nil)
		for i := uint64(1); i <= 100; i++ {
			tab.cell(i * 31)
		}
		var survivors []uint64
		for i := range tab.flags {
			if tab.flags[i] != 0 {
				survivors = append(survivors, tab.keys[i])
			}
		}
		return tab.evictions, survivors
	}
	ev1, s1 := run()
	ev2, s2 := run()
	if ev1 != ev2 {
		t.Fatalf("eviction counts differ across identical runs: %d vs %d", ev1, ev2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("survivor counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("survivor %d differs: %#x vs %#x", i, s1[i], s2[i])
		}
	}
}

func TestTableEvictionResetsState(t *testing.T) {
	tab := newTable(1, nil)
	idx := tab.cell(0x10)
	tab.flags[idx] |= cellWrite | cellMulti
	tab.data[idx].w.seq = 99
	tab.setRS(0x10, []mrec{{rec: rec{tid: 1}}})
	tab.ev(0x10, true).w = "stale"
	// Inserting a second address evicts the first; coming back to the
	// first must yield a virgin cell with no side state.
	tab.cell(0x20)
	idx = tab.cell(0x10)
	if tab.flags[idx] != cellUsed || tab.data[idx].w.seq != 0 {
		t.Fatalf("re-inserted cell kept stale state: flags=%#x seq=%d",
			tab.flags[idx], tab.data[idx].w.seq)
	}
	if tab.rs(0x10) != nil {
		t.Fatalf("re-inserted cell kept stale read-share list: %v", tab.rs(0x10))
	}
	if p := tab.ev(0x10, false); p != nil && (p.w != nil || p.r != nil) {
		t.Fatalf("re-inserted cell kept stale evidence: %+v", p)
	}
	if tab.evictions != 2 {
		t.Fatalf("evictions = %d, want 2", tab.evictions)
	}
}
