package stream_test

import (
	"testing"
	"time"

	"literace/internal/hb"
	"literace/internal/obs"
	"literace/internal/obs/diag"
	"literace/internal/stream"
)

// TestFlightRecorderCleanRun checks a pristine log records spans for
// every pipeline stage and no anomalies, and that recording does not
// perturb the detection result.
func TestFlightRecorderCleanRun(t *testing.T) {
	b := mustBench(t, "apache-1")
	data := genLog(t, b, 3, 1)

	base := runPipeline(t, data, 4, []int{777})

	rec := diag.NewRecorder(1 << 14)
	p := stream.New(stream.Options{Shards: 4, SamplerBit: hb.AllEvents, Diag: rec})
	for off := 0; off < len(data); off += 777 {
		end := off + 777
		if end > len(data) {
			end = len(data)
		}
		if err := p.Feed(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRaces != base.NumRaces || res.MemOps != base.MemOps {
		t.Fatalf("recording changed the result: %d/%d races, %d/%d mem ops",
			res.NumRaces, base.NumRaces, res.MemOps, base.MemOps)
	}
	for _, st := range []diag.Stage{
		diag.StageChunkDecode, diag.StageMergerDeliver, diag.StageClockEngine,
		diag.StageShardDispatch, diag.StageShardDetect,
	} {
		if c, _, _ := rec.StageStats(st); c == 0 {
			t.Errorf("no spans recorded for stage %s", st)
		}
	}
	// Backpressure (and backlog watermarks) are load artifacts and may
	// legitimately occur on a clean log; corruption-class anomalies must
	// not.
	for _, a := range []diag.Anomaly{
		diag.AnomCRCFailure, diag.AnomSeqGap, diag.AnomMarkerResync, diag.AnomDegradeTransition,
	} {
		if n := rec.AnomalyCount(a); n != 0 {
			t.Errorf("clean run recorded %d %s anomalies", n, a)
		}
	}
	if rec.Recorded() == 0 {
		t.Fatal("ring is empty")
	}
}

// TestFlightRecorderDamagedLog checks corruption shows up as anomaly
// records: a flipped bit must produce CRC/resync accounting and, once
// the merge weakens orderings, a degrade transition.
func TestFlightRecorderDamagedLog(t *testing.T) {
	b := mustBench(t, "apache-2")
	data := genLog(t, b, 2, 1)
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x40

	rec := diag.NewRecorder(1 << 14)
	p := stream.New(stream.Options{SamplerBit: hb.AllEvents, Diag: rec})
	if err := p.Feed(mut); err != nil {
		t.Fatal(err)
	}
	res, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Salvage.Lossy() {
		t.Skip("bit flip landed somewhere harmless")
	}
	if rec.Anomalies() == 0 {
		t.Fatalf("lossy run recorded no anomalies (salvage: %+v)", res.Salvage)
	}
	if res.Salvage.CRCFailures > 0 && rec.AnomalyCount(diag.AnomCRCFailure) == 0 {
		t.Fatal("CRC failure not recorded as anomaly")
	}
	if res.Salvage.BytesDropped > 0 && rec.AnomalyCount(diag.AnomMarkerResync) == 0 {
		t.Fatal("dropped bytes not recorded as resync anomaly")
	}
	if res.Degraded && rec.AnomalyCount(diag.AnomDegradeTransition) == 0 {
		t.Fatal("degrade transition not recorded")
	}
}

// TestEventsPerSecIdleDecay checks the staleness fix: the live gauge
// updates during Feed and drops to zero when the tail goes idle.
func TestEventsPerSecIdleDecay(t *testing.T) {
	b := mustBench(t, "apache-1")
	data := genLog(t, b, 3, 1)
	reg := obs.New()
	g := reg.Gauge("stream.events_per_sec")
	p := stream.New(stream.Options{SamplerBit: hb.AllEvents, Obs: reg})

	half := len(data) / 2
	if err := p.Feed(data[:half]); err != nil {
		t.Fatal(err)
	}
	// Let the rate window elapse so the next Feed refreshes the gauge.
	time.Sleep(120 * time.Millisecond)
	if err := p.Feed(data[half:]); err != nil {
		t.Fatal(err)
	}
	if g.Value() <= 0 {
		t.Fatalf("live gauge not refreshed during Feed: %v", g.Value())
	}
	p.Idle()
	if g.Value() != 0 {
		t.Fatalf("gauge did not decay to zero on idle: %v", g.Value())
	}
	res, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Finish still publishes the whole-run rate.
	if res.EventsPerSec > 0 && g.Value() != res.EventsPerSec {
		t.Fatalf("final gauge %v != result %v", g.Value(), res.EventsPerSec)
	}
}

// TestPipelineProbeAndHighWater checks the SLO probe surface: the
// backlog high watermark is monotone and survives the drain.
func TestPipelineProbeAndHighWater(t *testing.T) {
	b := mustBench(t, "apache-1")
	data := genLog(t, b, 3, 1)
	p := stream.New(stream.Options{SamplerBit: hb.AllEvents})
	if err := p.Feed(data); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	pr := p.Probe()
	if pr.Backlog != 0 {
		t.Fatalf("drained pipeline backlog = %d", pr.Backlog)
	}
	if pr.BacklogHighWater < pr.Backlog || p.BacklogHighWater() != pr.BacklogHighWater {
		t.Fatalf("high watermark inconsistent: %+v vs %d", pr, p.BacklogHighWater())
	}
}
