package stream_test

import (
	"bytes"
	"reflect"
	"testing"

	"literace/internal/hb"
	"literace/internal/stream"
	"literace/internal/trace"
)

// runEpochPipeline feeds data through an epoch-engine pipeline in
// pieces of the given size (0 = all at once) and returns the result.
func runEpochPipeline(t *testing.T, data []byte, shards, piece int, evidence bool) *stream.Result {
	t.Helper()
	p := stream.New(stream.Options{
		Shards:     shards,
		SamplerBit: hb.AllEvents,
		Engine:     hb.EngineEpoch,
		Evidence:   evidence,
	})
	if piece <= 0 {
		piece = len(data)
	}
	for off := 0; off < len(data); off += piece {
		end := off + piece
		if end > len(data) {
			end = len(data)
		}
		if err := p.Feed(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamEpochMatchesBatchVC is the streaming half of the epoch
// parity gate: a sharded epoch-engine pipeline must report the exact
// race list — order, attribution, evidence — the batch vector-clock
// oracle reports on the same bytes.
func TestStreamEpochMatchesBatchVC(t *testing.T) {
	for _, key := range []string{"dryad-stdlib", "concrt-msg", "apache-1", "lkrhash"} {
		for _, seed := range []int64{1, 7} {
			data := genLog(t, mustBench(t, key), seed, 1)
			log, err := trace.ReadAll(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			want, err := hb.Detect(log, hb.Options{SamplerBit: hb.AllEvents, Evidence: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 3} {
				for _, piece := range []int{0, 977} {
					got := runEpochPipeline(t, data, shards, piece, true)
					if got.NumRaces != want.NumRaces || got.MemOps != want.MemOps || got.SyncOps != want.SyncOps {
						t.Fatalf("%s seed %d shards %d piece %d: counters diverge: stream-epoch {r %d m %d s %d} batch-vc {r %d m %d s %d}",
							key, seed, shards, piece, got.NumRaces, got.MemOps, got.SyncOps,
							want.NumRaces, want.MemOps, want.SyncOps)
					}
					if !reflect.DeepEqual(got.Races, want.Races) {
						t.Fatalf("%s seed %d shards %d piece %d: race lists diverge", key, seed, shards, piece)
					}
					if got.Epoch == nil {
						t.Fatalf("%s seed %d: streaming epoch result missing engine stats", key, seed)
					}
					if got.Epoch.Accesses != got.MemOps {
						t.Fatalf("%s seed %d: shards analyzed %d accesses, dispatched %d",
							key, seed, got.Epoch.Accesses, got.MemOps)
					}
				}
			}
		}
	}
}

// TestStreamEpochNearMissParity checks the near-miss rows merge to the
// same table under the epoch engine.
func TestStreamEpochNearMissParity(t *testing.T) {
	data := genLog(t, mustBench(t, "concrt-sched"), 3, 1)
	log, err := trace.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want, err := hb.Detect(log, hb.Options{SamplerBit: hb.AllEvents, NearMissMargin: hb.DefaultNearMissMargin})
	if err != nil {
		t.Fatal(err)
	}
	p := stream.New(stream.Options{
		Shards:         3,
		SamplerBit:     hb.AllEvents,
		Engine:         hb.EngineEpoch,
		NearMissMargin: hb.DefaultNearMissMargin,
	})
	if err := p.Feed(data); err != nil {
		t.Fatal(err)
	}
	got, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.NearMisses, want.NearMisses) {
		t.Fatalf("near-miss rows diverge:\n  stream-epoch: %+v\n  batch-vc:     %+v", got.NearMisses, want.NearMisses)
	}
	if !reflect.DeepEqual(got.Races, want.Races) {
		t.Fatal("race lists diverge")
	}
}

// TestStreamEpochSharedDepot checks the shards deduplicate race
// identities through one shared depot: the interned stack count equals
// the static race count of the whole pass, not a per-shard sum.
func TestStreamEpochSharedDepot(t *testing.T) {
	data := genLog(t, mustBench(t, "dryad-stdlib"), 1, 1)
	res := runEpochPipeline(t, data, 4, 0, false)
	if res.NumRaces == 0 {
		t.Skip("benchmark produced no races at this seed")
	}
	statics := make(map[[4]int32]bool)
	for _, r := range res.Races {
		a, b := r.PrevPC, r.CurPC
		if b.Less(a) {
			a, b = b, a
		}
		statics[[4]int32{a.Func, a.Index, b.Func, b.Index}] = true
	}
	if res.Epoch.DepotStacks != len(statics) {
		t.Fatalf("depot holds %d identities, want %d (distinct static pairs)",
			res.Epoch.DepotStacks, len(statics))
	}
}
