package stream_test

import (
	"bytes"
	"reflect"
	"testing"

	"literace/internal/hb"
	"literace/internal/stream"
	"literace/internal/trace"
)

// FuzzStreamParity is the differential gate between the online pipeline
// and the batch path: on arbitrary bytes, streaming decode + sharded
// detection must agree exactly with trace.Salvage + hb.DetectDegraded —
// same races in the same order, same confirmed/unconfirmed split, same
// degradation and salvage accounting — no matter how the input is split
// into feeds or how many shards run.
func FuzzStreamParity(f *testing.F) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	// A seed log with real cross-thread sync and racing accesses.
	var ts [4]uint64
	for i := 0; i < 60; i++ {
		tid := int32(i % 3)
		tw := w.Thread(tid)
		tw.Append(trace.Event{Kind: trace.KindWrite, TID: tid, Addr: uint64(i % 7), Mask: 1})
		tw.Append(trace.Event{Kind: trace.KindRead, TID: tid, Addr: 100 + uint64(i%5), Mask: 1})
		if i%4 == 0 {
			c := uint8(i % 4)
			ts[c]++
			tw.Append(trace.Event{Kind: trace.KindAcqRel, Op: trace.OpLock, TID: tid,
				Addr: 1000 + uint64(c), Counter: c, TS: ts[c]})
		}
		if i%9 == 0 {
			tw.Flush()
		}
	}
	if err := w.Close(trace.Meta{Module: "fuzz-seed"}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid, uint16(0), uint8(4))
	f.Add(valid, uint16(len(valid)/2), uint8(1))
	f.Add([]byte{}, uint16(0), uint8(2))
	for i := 0; i < len(valid); i += 7 {
		f.Add(valid[:i], uint16(i/2), uint8(3))
		c := append([]byte(nil), valid...)
		c[i] ^= 0x55
		f.Add(c, uint16(3*i), uint8(5))
	}

	magic := []byte("LTRC2\n")

	f.Fuzz(func(t *testing.T, data []byte, split uint16, shards uint8) {
		if bytes.HasPrefix(data, []byte("LTRC1\n")) {
			// Legacy logs have no markers: salvage handles them, the
			// incremental decoder rejects them by contract.
			return
		}
		slog, srep, serr := trace.Salvage(bytes.NewReader(data))

		p := stream.New(stream.Options{
			Shards:     int(shards%8) + 1,
			SamplerBit: hb.AllEvents,
			BatchSize:  int(shards)%300 + 1,
		})
		cut := 0
		if len(data) > 0 {
			cut = int(split) % (len(data) + 1)
		}
		ferr := p.Feed(data[:cut])
		if ferr == nil {
			ferr = p.Feed(data[cut:])
		}
		res, gerr := p.Finish()
		if ferr != nil {
			gerr = ferr
		}

		if len(data) < len(magic) && bytes.HasPrefix(magic, data) {
			// Dead-producer input: a proper prefix of the magic (or zero
			// bytes). Batch salvage calls it not-a-log; the incremental
			// decoder finishes cleanly with an empty result, accounting
			// the bytes as dropped. This is the one intended divergence.
			if serr == nil {
				t.Fatalf("salvage accepted sub-header input: %q", data)
			}
			if gerr != nil {
				t.Fatalf("stream failed on sub-header input %q: %v", data, gerr)
			}
			if res.NumRaces != 0 || res.MemOps != 0 || res.SyncOps != 0 {
				t.Fatalf("sub-header input produced events: %+v", res.Result)
			}
			if res.Salvage.Truncated || res.Salvage.BytesDropped != int64(len(data)) {
				t.Fatalf("sub-header salvage report: %+v", res.Salvage)
			}
			return
		}
		if (serr != nil) != (gerr != nil) {
			t.Fatalf("salvage err %v, stream err %v", serr, gerr)
		}
		if serr != nil {
			return
		}
		want, wdeg, err := hb.DetectDegraded(slog, hb.Options{SamplerBit: hb.AllEvents})
		if err != nil {
			t.Fatalf("batch detect: %v", err)
		}
		if !reflect.DeepEqual(res.Races, want.Races) {
			t.Fatalf("races differ\nstream: %+v\nbatch:  %+v", res.Races, want.Races)
		}
		if res.NumRaces != want.NumRaces || res.Unconfirmed != want.Unconfirmed ||
			res.Degraded != want.Degraded || res.MemOps != want.MemOps || res.SyncOps != want.SyncOps {
			t.Fatalf("summary differs\nstream: %+v\nbatch:  %+v", res.Result, *want)
		}
		if res.Degradation != *wdeg {
			t.Fatalf("degradation differs: stream %+v, batch %+v", res.Degradation, *wdeg)
		}
		if !reflect.DeepEqual(res.Salvage, srep) {
			t.Fatalf("salvage report differs\nstream: %+v\nbatch:  %+v", res.Salvage, srep)
		}
	})
}
