package stream_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"literace/internal/core"
	"literace/internal/hb"
	"literace/internal/instrument"
	"literace/internal/interp"
	"literace/internal/sampler"
	"literace/internal/stream"
	"literace/internal/trace"
	"literace/internal/workloads"
)

// genLog executes benchmark b at the given scale and seed under full
// logging and returns the encoded LTRC2 log — the same recipe the
// harness uses for its ground-truth runs.
func genLog(t *testing.T, b workloads.Benchmark, seed int64, scale int) []byte {
	t.Helper()
	mod, err := b.Module(scale)
	if err != nil {
		t.Fatal(err)
	}
	rw, _, err := instrument.Rewrite(mod, instrument.Options{Mode: instrument.ModeSampled})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(core.Config{
		NumFuncs:      len(mod.Funcs),
		Primary:       sampler.NewFull(),
		Writer:        w,
		EnableMemLog:  true,
		EnableSyncLog: true,
		Seed:          seed,
		Cost:          core.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mach, err := interp.New(rw, interp.Options{Seed: seed, Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mach.Run()
	if err != nil {
		t.Fatalf("%s seed %d: %v", b.Key, seed, err)
	}
	if err := w.Close(mach.Meta(res)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mustBench resolves a benchmark key or fails the test.
func mustBench(t *testing.T, key string) workloads.Benchmark {
	t.Helper()
	b, ok := workloads.ByKey(key)
	if !ok {
		t.Fatalf("unknown benchmark %q", key)
	}
	return b
}

// runPipeline feeds data through a streaming pipeline in pieces of the
// given sizes (cycled; {0} means all at once).
func runPipeline(t *testing.T, data []byte, shards int, sizes []int) *stream.Result {
	t.Helper()
	p := stream.New(stream.Options{Shards: shards, SamplerBit: hb.AllEvents})
	for off, i := 0, 0; off < len(data); i++ {
		n := sizes[i%len(sizes)]
		if n <= 0 || n > len(data)-off {
			n = len(data) - off
		}
		if err := p.Feed(data[off : off+n]); err != nil {
			t.Fatalf("feed: %v", err)
		}
		off += n
	}
	res, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkParity asserts the streaming result matches a batch pass bit for
// bit: the race list (order included), the counts, and the analyzed-op
// totals.
func checkParity(t *testing.T, name string, got *stream.Result, want *hb.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Races, want.Races) {
		t.Fatalf("%s: streaming races differ from batch\nstream: %+v\nbatch:  %+v", name, got.Races, want.Races)
	}
	if got.NumRaces != want.NumRaces || got.Unconfirmed != want.Unconfirmed || got.Degraded != want.Degraded {
		t.Fatalf("%s: counts differ: stream %d/%d unconfirmed (degraded=%v), batch %d/%d (degraded=%v)",
			name, got.NumRaces, got.Unconfirmed, got.Degraded, want.NumRaces, want.Unconfirmed, want.Degraded)
	}
	if got.MemOps != want.MemOps || got.SyncOps != want.SyncOps {
		t.Fatalf("%s: analyzed ops differ: stream %d mem %d sync, batch %d mem %d sync",
			name, got.MemOps, got.SyncOps, want.MemOps, want.SyncOps)
	}
}

// TestStreamParityBenchmarks is the issue's acceptance gate: over every
// evaluated benchmark and three seeds, streaming detection must report
// exactly the batch result — both fed whole and fed through a torn live
// tail that later completes.
func TestStreamParityBenchmarks(t *testing.T) {
	for _, b := range workloads.Evaluated() {
		b := b
		t.Run(b.Key, func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{1, 2, 3} {
				data := genLog(t, b, seed, 1)
				log, err := trace.ReadAll(bytes.NewReader(data))
				if err != nil {
					t.Fatal(err)
				}
				want, err := hb.Detect(log, hb.Options{SamplerBit: hb.AllEvents})
				if err != nil {
					t.Fatal(err)
				}

				whole := runPipeline(t, data, 4, []int{0})
				checkParity(t, "whole", whole, want)
				if !whole.Complete {
					t.Fatal("complete log not recognized as complete")
				}
				if whole.Degradation.Degraded() {
					t.Fatalf("pristine log degraded: %s", whole.Degradation.String())
				}
				if !reflect.DeepEqual(whole.Meta, log.Meta) {
					t.Fatalf("meta differs: stream %+v batch %+v", whole.Meta, log.Meta)
				}

				// A live tail: cut mid-log (usually mid-chunk), feed the
				// prefix, then the rest.
				cut := len(data) / 3
				torn := runPipeline(t, data, 4, []int{cut, len(data) - cut})
				checkParity(t, "torn-then-completed", torn, want)

				// Fine-grained feeding must not change anything.
				drip := runPipeline(t, data, 4, []int{4 << 10})
				checkParity(t, "drip", drip, want)
			}
		})
	}
}

// TestStreamShardCountInvariance pins the partitioning correctness: any
// shard count yields the identical ordered race list.
func TestStreamShardCountInvariance(t *testing.T) {
	b := mustBench(t, "apache-1")
	data := genLog(t, b, 1, 1)
	base := runPipeline(t, data, 1, []int{0})
	for _, shards := range []int{2, 3, 8} {
		got := runPipeline(t, data, shards, []int{0})
		if !reflect.DeepEqual(got.Races, base.Races) {
			t.Fatalf("%d shards: races differ from 1 shard", shards)
		}
		var total uint64
		for _, n := range got.ShardEvents {
			total += n
		}
		if total != got.Dispatched || got.Dispatched != got.MemOps {
			t.Fatalf("%d shards: %d shard events, %d dispatched, %d mem ops",
				shards, total, got.Dispatched, got.MemOps)
		}
	}
}

// TestStreamDamagedParity checks the degraded path: on bit-flipped and
// truncated logs the pipeline must equal Salvage + DetectDegraded — same
// races, same confirmed/unconfirmed split, same degradation accounting,
// same salvage report.
func TestStreamDamagedParity(t *testing.T) {
	b := mustBench(t, "apache-2")
	data := genLog(t, b, 2, 1)
	r := rand.New(rand.NewSource(41))
	mutants := [][]byte{data[:len(data)/2], data[:len(data)-3]}
	for i := 0; i < 12; i++ {
		mut := append([]byte(nil), data...)
		mut[64+r.Intn(len(mut)-64)] ^= 1 << uint(r.Intn(8))
		mutants = append(mutants, mut)
	}
	for i, mut := range mutants {
		slog, srep, err := trace.Salvage(bytes.NewReader(mut))
		if err != nil {
			t.Fatal(err)
		}
		want, wdeg, err := hb.DetectDegraded(slog, hb.Options{SamplerBit: hb.AllEvents})
		if err != nil {
			t.Fatal(err)
		}
		got := runPipeline(t, mut, 4, []int{0, 777})
		checkParity(t, "damaged", got, want)
		if got.Degradation != *wdeg {
			t.Fatalf("mutant %d: degradation %+v != batch %+v", i, got.Degradation, *wdeg)
		}
		if !reflect.DeepEqual(got.Salvage, srep) {
			t.Fatalf("mutant %d: salvage report %+v != batch %+v", i, got.Salvage, srep)
		}
	}
}

// TestStreamOnRaceCallback checks the incremental reporting hook: every
// race in the final result was also delivered via OnRace.
func TestStreamOnRaceCallback(t *testing.T) {
	b := mustBench(t, "apache-1")
	data := genLog(t, b, 3, 1)
	var live int
	p := stream.New(stream.Options{
		SamplerBit: hb.AllEvents,
		OnRace:     func(hb.DynamicRace) { live++ },
	})
	if err := p.Feed(data); err != nil {
		t.Fatal(err)
	}
	res, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(live) != res.NumRaces {
		t.Fatalf("OnRace fired %d times, result has %d races", live, res.NumRaces)
	}
	if res.NumRaces == 0 {
		t.Fatal("apache workload expected to race")
	}
}

// TestStreamRejectsGarbage checks the failure path shuts the shard
// workers down cleanly.
func TestStreamRejectsGarbage(t *testing.T) {
	p := stream.New(stream.Options{})
	if err := p.Feed([]byte("GIF89a not a trace")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := p.Finish(); err == nil {
		t.Fatal("finish on garbage succeeded")
	}
	if err := p.Feed([]byte("x")); err == nil {
		t.Fatal("feed after finish succeeded")
	}
}
