// Package stream is the online detection pipeline: it analyzes an LTRC2
// event log while the log is still being written. Four layers compose:
// an incremental chunk decoder (trace.Stream) tails the growing byte
// stream; the shared ready-queue merge engine (hb.Merger) reconstructs a
// legal global order from the chunks as they arrive; a single-threaded
// clock engine applies synchronization events to per-thread vector
// clocks; and sampled memory accesses fan out to detection shards —
// shadow memory partitioned by address — that run the happens-before
// access analysis concurrently.
//
// The pipeline's result is identical, race for race and in the same
// order, to a batch trace.ReadAll/Salvage + hb.Detect/DetectDegraded
// pass over the same bytes. That holds by construction: batch replay and
// this pipeline feed the same chunk sequence (the log's byte order)
// through the same hb.Merger, the clock engine is the synchronization
// half of hb.Detector verbatim, and each address's accesses reach
// exactly one shard in replay order, so every happens-before judgment
// compares the same clocks. A global dispatch ordinal restores the
// replay-order race list when the shards' findings merge.
package stream

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"literace/internal/hb"
	"literace/internal/obs"
	"literace/internal/obs/diag"
	"literace/internal/shadow"
	"literace/internal/trace"
)

// Options configures a Pipeline.
type Options struct {
	// Shards is the number of detection workers (shadow-memory
	// partitions); 0 means DefaultShards.
	Shards int
	// SamplerBit filters memory events as hb.Options.SamplerBit does.
	// NOTE: the zero value selects sampler bit 0; pass hb.AllEvents to
	// analyze every logged access.
	SamplerBit int
	// KeepMax bounds Result.Races as hb.Options.KeepMax does; 0 keeps all.
	KeepMax int
	// BatchSize is the number of memory accesses grouped per shard
	// dispatch; 0 means DefaultBatchSize.
	BatchSize int
	// Obs, when non-nil, receives live pipeline telemetry (the
	// literace_stream_* families; see docs/OBSERVABILITY.md) alongside
	// the usual replay and detection counters.
	Obs *obs.Registry
	// Diag, when non-nil, is the flight recorder: every stage records
	// spans (decode, deliver, clock, dispatch, detect) and every
	// anomaly (CRC failure, seq gap, resync, backpressure, backlog
	// high-watermark, degrade transition) leaves a structured record.
	// Nil disables recording at zero cost.
	Diag *diag.Recorder
	// Log, when non-nil, receives structured warnings for pipeline
	// anomalies (slog; the stream subsystem logger). Nil disables.
	Log *slog.Logger
	// OnRace, when non-nil, is invoked for each dynamic race as a shard
	// finds it. Calls are serialized but arrive in discovery order, which
	// under sharding is not replay order; Result.Races is the canonical
	// ordered list.
	OnRace func(hb.DynamicRace)
	// Evidence enables forensic evidence capture, exactly as
	// hb.Options.Evidence does: every reported race carries immutable
	// AccessEvidence snapshots byte-identical to a batch pass.
	Evidence bool
	// NearMissMargin enables near-miss analytics as
	// hb.Options.NearMissMargin does; the per-shard accumulators merge at
	// Finish into the same rows a batch pass produces.
	NearMissMargin int
	// Engine selects the per-shard memory-access analysis core:
	// hb.EngineVC (also the empty string, the default) or
	// hb.EngineEpoch, which routes every shard's accesses through an
	// epoch fast-path engine (internal/shadow) sharing one stack depot.
	// Race sets stay byte-identical either way. Callers validate the
	// name (hb.ValidEngine); New treats unknown values as the default.
	Engine string
	// ShadowMaxCells bounds each shard's shadow-memory table under the
	// epoch engine; 0 (unbounded) preserves exact parity with the
	// vector-clock core.
	ShadowMaxCells int
}

// DefaultShards is the shard count when Options.Shards is 0.
const DefaultShards = 4

// ShardEventsCounterPrefix and ShardUtilGaugePrefix name the per-shard
// instrument families: stream.shard_events.<i> counts the accesses shard
// i processed (live) and stream.shard_util.<i> is its share of all
// dispatched accesses (set at Finish). The Prometheus encoder folds each
// family into one labeled series, e.g.
// literace_stream_shard_util{shard="0"}.
const (
	ShardEventsCounterPrefix = "stream.shard_events."
	ShardUtilGaugePrefix     = "stream.shard_util."
)

// DefaultBatchSize is the dispatch batch size when Options.BatchSize is 0.
const DefaultBatchSize = 256

// shardChanDepth bounds each shard's inbox (in batches); a full inbox
// backpressures the clock engine, which stream.backpressure counts.
const shardChanDepth = 16

// Result is the outcome of a streaming detection pass.
type Result struct {
	hb.Result

	// Degradation accounts the orderings the merge weakened on a damaged
	// or torn input (zero on a pristine complete log).
	Degradation hb.Degradation
	// Salvage is the decoder's accounting of the bytes consumed.
	Salvage *trace.SalvageReport
	// Meta is the best run metadata available (trailer, else checkpoint).
	Meta trace.Meta
	// Complete reports whether the metadata trailer was seen — the
	// writer's Close ran, so the input was a finished log.
	Complete bool

	// Dispatched counts memory accesses fanned out to shards (equals
	// Result.MemOps), ShardEvents how many each shard processed, and
	// Stalls/Backpressure the reorder and fan-out friction encountered.
	Dispatched   uint64
	ShardEvents  []uint64
	Stalls       uint64
	Backpressure uint64
	// Elapsed and EventsPerSec describe throughput from pipeline creation
	// to Finish (all delivered events, sync included).
	Elapsed      time.Duration
	EventsPerSec float64
}

// Pipeline is an online detection session. Feed it encoded log bytes in
// any pieces (tailing a file, draining a socket); call Finish once the
// input is over to collect the result. Not safe for concurrent use — one
// goroutine feeds; the shards run internally.
type Pipeline struct {
	opts   Options
	shards []*shard
	done   chan struct{}

	// depot is the stack depot the shard epoch engines share; nil under
	// the vector-clock engine.
	depot *shadow.Depot

	dec *trace.Stream
	m   *hb.Merger
	deg hb.Degradation

	threads  map[int32]*clockState
	vars     map[uint64]hb.VC
	degraded bool

	ordinal    uint64 // next mem-access dispatch ordinal
	degradeOrd atomic.Uint64
	pending    [][]memAccess // per-shard batch under construction

	res      hb.Result
	raceMu   sync.Mutex
	start    time.Time
	backpres uint64

	finished bool
	finRes   *Result
	finErr   error

	// Flight recorder + structured log (both may be nil).
	rec *diag.Recorder
	log *slog.Logger

	// Anomaly delta tracking: the decoder's SalvageReport counters are
	// cumulative, so each Feed diffs them to turn increases into
	// flight-recorder anomaly records.
	prevCRC     int
	prevGaps    uint64
	prevDropped int64 // bytes
	prevChunks  int   // chunks dropped
	hwmRecorded int   // last backlog HWM recorded as an anomaly

	// Clock-engine accumulators for the current chunk (valid only while
	// rec != nil): wall nanoseconds and ops spent in sync-event clock
	// updates, flushed as one StageClockEngine span per chunk.
	clkNs  int64
	clkOps uint64

	// Live events_per_sec window (fixes the gauge staleness: the rate is
	// refreshed during Feed and decays to zero when Idle is called).
	rateAt        time.Time
	rateDelivered uint64

	// Telemetry; nil-safe when opts.Obs is nil.
	obsBytes    *obs.Counter // stream.bytes
	obsEvents   *obs.Counter // stream.events
	obsDispatch *obs.Counter // stream.mem_dispatched
	obsBackpres *obs.Counter // stream.backpressure
	obsBacklog  *obs.Gauge   // stream.backlog_depth
	obsHWM      *obs.Gauge   // stream.backlog_hwm
	obsStalls   *obs.Gauge   // stream.reorder_stalls
	obsEPS      *obs.Gauge   // stream.events_per_sec
	obsJoins    *obs.Counter // hb.vc_joins
	obsRaces    *obs.Counter // hb.dynamic_races
	obsMem      *obs.Counter // hb.mem_events
	obsSync     *obs.Counter // hb.sync_events
}

// clockState is the producer-side view of one thread: its live vector
// clock plus the immutable snapshot shards read. Sync events mutate vc
// and mark it dirty; the next dispatched access re-snapshots. In
// evidence mode ev tracks the thread's happens-before frontier and held
// lockset (mirrors hb.Detector's threadState exactly).
type clockState struct {
	vc     hb.VC
	pub    hb.VC
	dirty  bool
	memSeq uint64
	ev     hb.EvidenceState
}

// New starts a pipeline: the shard workers launch immediately and idle
// until accesses arrive.
func New(opts Options) *Pipeline {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	p := &Pipeline{
		opts:    opts,
		threads: make(map[int32]*clockState),
		vars:    make(map[uint64]hb.VC),
		pending: make([][]memAccess, opts.Shards),
		done:    make(chan struct{}, opts.Shards),
		start:   time.Now(),
		rec:     opts.Diag,
		log:     opts.Log,
	}
	p.rateAt = p.start
	p.degradeOrd.Store(^uint64(0))
	if reg := opts.Obs; reg != nil {
		p.obsBytes = reg.Counter("stream.bytes")
		p.obsEvents = reg.Counter("stream.events")
		p.obsDispatch = reg.Counter("stream.mem_dispatched")
		p.obsBackpres = reg.Counter("stream.backpressure")
		p.obsBacklog = reg.Gauge("stream.backlog_depth")
		p.obsHWM = reg.Gauge("stream.backlog_hwm")
		p.obsStalls = reg.Gauge("stream.reorder_stalls")
		p.obsEPS = reg.Gauge("stream.events_per_sec")
		p.obsJoins = reg.Counter("hb.vc_joins")
		p.obsRaces = reg.Counter("hb.dynamic_races")
		p.obsMem = reg.Counter("hb.mem_events")
		p.obsSync = reg.Counter("hb.sync_events")
	}
	var onRace func(hb.DynamicRace)
	if opts.OnRace != nil {
		onRace = func(r hb.DynamicRace) {
			p.raceMu.Lock()
			defer p.raceMu.Unlock()
			p.opts.OnRace(r)
		}
	}
	if opts.Engine == hb.EngineEpoch {
		p.depot = shadow.NewDepot()
	}
	for i := 0; i < opts.Shards; i++ {
		s := &shard{
			idx:        i,
			ch:         make(chan []memAccess, shardChanDepth),
			mem:        make(map[uint64]*addrHist),
			degradeOrd: &p.degradeOrd,
			onRace:     onRace,
			near:       hb.NewNearAccum(opts.NearMissMargin),
			evCnt:      opts.Obs.Counter(fmt.Sprintf("%s%d", ShardEventsCounterPrefix, i)),
			rec:        opts.Diag,
		}
		if p.depot != nil {
			s.attachEpoch(p.depot, opts)
		}
		p.shards = append(p.shards, s)
		go s.run(p.done)
	}
	p.m = hb.NewMerger(hb.MergerOptions{
		Obs:       opts.Obs,
		Degraded:  &p.deg,
		OnDegrade: p.onDegrade,
	})
	p.dec = trace.NewStream(p.onChunk)
	return p
}

// onDegrade fires inside the merger before the first event whose
// ordering was weakened is delivered: every access dispatched from now
// on — starting with that event if it is a sampled access — produces
// only unconfirmed races, exactly as hb.Detector.MarkDegraded would.
func (p *Pipeline) onDegrade() {
	if !p.degraded {
		p.degraded = true
		p.res.Degraded = true
		p.degradeOrd.Store(p.ordinal)
		p.rec.Anomaly(diag.AnomDegradeTransition, -1, p.ordinal, p.m.Delivered())
		if p.log != nil {
			p.log.Warn("merge degraded: races from here on are unconfirmed",
				"ordinal", p.ordinal, "delivered", p.m.Delivered())
		}
	}
}

// onChunk receives each accepted thread chunk from the decoder in byte
// order and pumps the merge — the canonical per-chunk cadence batch
// replay follows via trace.Log.ChunkOrder.
func (p *Pipeline) onChunk(tid int32, evs []trace.Event, suspect bool) {
	sf := len(evs)
	if suspect {
		sf = 0
	}
	var t0 time.Time
	var d0 uint64
	if p.rec != nil {
		t0 = time.Now()
		d0 = p.m.Delivered()
		p.clkNs, p.clkOps = 0, 0
	}
	if err := p.m.Add(tid, evs, sf); err != nil {
		// Unreachable in this pipeline — the decoder is finished before
		// the merger — but a misuse must not be silently dropped.
		if p.log != nil {
			p.log.Error("merger rejected chunk", "tid", tid, "err", err)
		}
		return
	}
	// handle never fails, and degraded-mode pumping has no other errors.
	_ = p.m.Pump(p.handle)
	p.obsBacklog.Set(float64(p.m.Backlog()))
	p.obsHWM.Set(float64(p.m.BacklogHighWater()))
	if p.rec != nil {
		delivered := p.m.Delivered()
		p.rec.Span(diag.StageMergerDeliver, tid, t0, time.Since(t0), delivered, delivered-d0)
		if p.clkOps > 0 {
			p.rec.Span(diag.StageClockEngine, tid, t0, time.Duration(p.clkNs), delivered, p.clkOps)
		}
		// A new backlog high watermark at least double the last recorded
		// one (and past a floor) is worth an anomaly record: the merge is
		// buffering badly out-of-order arrivals.
		if hwm := p.m.BacklogHighWater(); hwm >= backlogHWMFloor && hwm >= 2*p.hwmRecorded {
			p.hwmRecorded = hwm
			p.rec.Anomaly(diag.AnomBacklogHighWater, tid, uint64(hwm), delivered)
			if p.log != nil {
				p.log.Warn("merge backlog high watermark", "events", hwm)
			}
		}
	}
}

// backlogHWMFloor is the backlog (events) below which high-watermark
// growth is considered routine and not worth an anomaly record.
const backlogHWMFloor = 1024

// handle is the clock engine: the synchronization half of hb.Detector,
// run single-threaded in merge order, plus the fan-out of sampled memory
// accesses to shards.
func (p *Pipeline) handle(e trace.Event) error {
	p.obsEvents.Inc()
	// Accumulate clock-engine wall time per chunk when the flight
	// recorder is on (one span per chunk, flushed by onChunk).
	var clkT0 time.Time
	clkTimed := p.rec != nil && e.Kind.IsSync()
	if clkTimed {
		clkT0 = time.Now()
	}
	switch e.Kind {
	case trace.KindAcquire:
		p.res.SyncOps++
		p.obsSync.Inc()
		t := p.thread(e.TID)
		if lv, ok := p.vars[e.Addr]; ok {
			t.vc = t.vc.Join(lv)
			t.dirty = true
			p.obsJoins.Inc()
		}
		if p.opts.Evidence {
			t.ev.OnSync(e)
		}
	case trace.KindRelease:
		p.res.SyncOps++
		p.obsSync.Inc()
		t := p.thread(e.TID)
		p.vars[e.Addr] = p.vars[e.Addr].Join(t.vc)
		p.obsJoins.Inc()
		t.vc = t.vc.Tick(e.TID)
		t.dirty = true
		if p.opts.Evidence {
			t.ev.OnSync(e)
		}
	case trace.KindAcqRel:
		p.res.SyncOps++
		p.obsSync.Inc()
		t := p.thread(e.TID)
		if lv, ok := p.vars[e.Addr]; ok {
			t.vc = t.vc.Join(lv)
			p.obsJoins.Inc()
		}
		p.vars[e.Addr] = p.vars[e.Addr].Join(t.vc)
		p.obsJoins.Inc()
		t.vc = t.vc.Tick(e.TID)
		t.dirty = true
		if p.opts.Evidence {
			t.ev.OnSync(e)
		}
	case trace.KindRead, trace.KindWrite:
		if p.opts.SamplerBit >= 0 && e.Mask&(1<<uint(p.opts.SamplerBit)) == 0 {
			return nil
		}
		p.res.MemOps++
		p.obsMem.Inc()
		t := p.thread(e.TID)
		t.memSeq++
		if t.dirty || t.pub == nil {
			t.pub = t.vc.Clone()
			t.dirty = false
		}
		a := memAccess{
			ord:   p.ordinal,
			seq:   t.memSeq,
			addr:  e.Addr,
			tid:   e.TID,
			write: e.Kind == trace.KindWrite,
			pc:    e.PC,
			vc:    t.pub,
		}
		if p.opts.Evidence {
			a.ev = t.ev.Snapshot(t.pub)
		}
		p.ordinal++
		p.obsDispatch.Inc()
		i := p.shardOf(e.Addr)
		p.pending[i] = append(p.pending[i], a)
		if len(p.pending[i]) >= p.opts.BatchSize {
			p.flush(i)
		}
	}
	if clkTimed {
		p.clkNs += time.Since(clkT0).Nanoseconds()
		p.clkOps++
	}
	return nil
}

func (p *Pipeline) thread(tid int32) *clockState {
	t := p.threads[tid]
	if t == nil {
		// A fresh thread starts at clock 1 so its epoch (tid, 1) is not
		// vacuously happens-before everything (mirrors hb.Detector).
		t = &clockState{vc: hb.VC{}.Set(tid, 1), dirty: true}
		p.threads[tid] = t
	}
	return t
}

// shardOf partitions the address space: a multiplicative hash spreads
// the (often aligned, clustered) addresses evenly across shards.
func (p *Pipeline) shardOf(addr uint64) int {
	return int((addr * 0x9E3779B97F4A7C15 >> 33) % uint64(len(p.shards)))
}

func (p *Pipeline) flush(i int) {
	b := p.pending[i]
	if len(b) == 0 {
		return
	}
	p.pending[i] = nil
	var t0 time.Time
	if p.rec != nil {
		t0 = time.Now()
	}
	select {
	case p.shards[i].ch <- b:
	default:
		// Inbox full: the shard is behind and the clock engine blocks.
		p.backpres++
		p.obsBackpres.Inc()
		p.rec.Anomaly(diag.AnomBackpressure, int32(i), uint64(len(b)), p.ordinal)
		if p.log != nil {
			p.log.Debug("shard inbox full; clock engine blocked", "shard", i, "batch", len(b))
		}
		p.shards[i].ch <- b
	}
	if p.rec != nil {
		// The span covers the channel send, so a backpressure wait shows
		// up as dispatch latency on this shard's track.
		p.rec.Span(diag.StageShardDispatch, int32(i), t0, time.Since(t0), p.ordinal, uint64(len(b)))
	}
}

func (p *Pipeline) flushAll() {
	for i := range p.pending {
		p.flush(i)
	}
}

// Feed appends encoded log bytes. Chunks completed by this piece are
// decoded, merged, and their sampled accesses dispatched immediately.
// The error is non-nil only when the input is not an LTRC2 log at all
// (including ErrLegacyStream for LTRC1); damage within the stream is
// recovered from and accounted, never fatal.
func (p *Pipeline) Feed(b []byte) error {
	if p.finished {
		return errors.New("stream: feed after finish")
	}
	p.obsBytes.Add(uint64(len(b)))
	var t0 time.Time
	if p.rec != nil {
		t0 = time.Now()
	}
	err := p.dec.Feed(b)
	if p.rec != nil {
		p.rec.Span(diag.StageChunkDecode, -1, t0, time.Since(t0), p.m.Delivered(), uint64(len(b)))
		p.recordSalvageAnomalies()
	}
	// Keep watch-style consumers current even when batches are small.
	p.flushAll()
	p.obsStalls.Set(float64(p.m.Stalls()))
	p.updateRate()
	return err
}

// recordSalvageAnomalies diffs the decoder's cumulative salvage
// accounting against the last reading and turns every increase into a
// flight-recorder anomaly record (and a structured warning).
func (p *Pipeline) recordSalvageAnomalies() {
	rep := p.dec.Report()
	vclk := p.m.Delivered()
	if d := rep.CRCFailures - p.prevCRC; d > 0 {
		p.prevCRC = rep.CRCFailures
		p.rec.Anomaly(diag.AnomCRCFailure, -1, uint64(d), vclk)
		if p.log != nil {
			p.log.Warn("chunk CRC failure; chunk dropped", "count", d, "total", rep.CRCFailures)
		}
	}
	if d := rep.SeqGaps - p.prevGaps; d > 0 {
		p.prevGaps = rep.SeqGaps
		p.rec.Anomaly(diag.AnomSeqGap, -1, d, vclk)
		if p.log != nil {
			p.log.Warn("chunk sequence gap; events lost", "slots", d, "total", rep.SeqGaps)
		}
	}
	// A resynchronization shows up as dropped bytes (the scan discards
	// them) or dropped chunks; record the byte magnitude.
	if d := rep.BytesDropped - p.prevDropped; d > 0 {
		p.prevDropped = rep.BytesDropped
		p.rec.Anomaly(diag.AnomMarkerResync, -1, uint64(d), vclk)
		if p.log != nil {
			p.log.Warn("resynchronized past damaged bytes", "bytes", d, "total", rep.BytesDropped)
		}
	} else if d := rep.ChunksDropped - p.prevChunks; d > 0 {
		if p.log != nil {
			p.log.Warn("chunk dropped", "count", d, "total", rep.ChunksDropped)
		}
	}
	p.prevChunks = rep.ChunksDropped
}

// rateWindow is the minimum interval between events_per_sec gauge
// refreshes during Feed.
const rateWindow = 100 * time.Millisecond

// updateRate refreshes the stream.events_per_sec gauge with the
// delivery rate over the window since the last refresh, so the gauge
// tracks the live rate instead of holding stale values.
func (p *Pipeline) updateRate() {
	now := time.Now()
	el := now.Sub(p.rateAt)
	if el < rateWindow {
		return
	}
	delivered := p.m.Delivered()
	p.obsEPS.Set(float64(delivered-p.rateDelivered) / el.Seconds())
	p.rateAt, p.rateDelivered = now, delivered
}

// Idle tells the pipeline the input tail has gone idle (a poll interval
// passed with no growth): the events_per_sec gauge decays to zero
// immediately instead of advertising the last burst's rate forever.
func (p *Pipeline) Idle() {
	if p.finished {
		return
	}
	p.obsEPS.Set(0)
	p.rateAt, p.rateDelivered = time.Now(), p.m.Delivered()
}

// Complete reports whether the log's metadata trailer has been decoded —
// the writer closed the log, so no more chunks are coming.
func (p *Pipeline) Complete() bool { return p.dec.Complete() }

// Backlog returns the number of decoded events buffered in the merge
// waiting for an earlier timestamp to arrive.
func (p *Pipeline) Backlog() int { return p.m.Backlog() }

// BacklogHighWater returns the largest merge backlog ever observed.
func (p *Pipeline) BacklogHighWater() int { return p.m.BacklogHighWater() }

// Probe returns the live readings the SLO watchdog evaluates. Call it
// from the feeding goroutine, like Feed.
func (p *Pipeline) Probe() diag.Probe {
	return diag.Probe{Backlog: p.m.Backlog(), BacklogHighWater: p.m.BacklogHighWater()}
}

// Finish declares the input over: the decoder applies its end-of-input
// rules to any torn tail, the merge drains (fast-forwarding stuck
// counters on damaged input), the shards flush, and their findings merge
// back into replay order. Finish is idempotent; Feed errors afterwards.
func (p *Pipeline) Finish() (*Result, error) {
	if p.finished {
		return p.finRes, p.finErr
	}
	p.finished = true
	srep, derr := p.dec.Finish()
	if derr == nil {
		if p.rec != nil {
			// The end-of-input rules may drop a torn tail; account it.
			p.recordSalvageAnomalies()
		}
		_ = p.m.Finish(p.handle)
	}
	p.flushAll()
	for _, s := range p.shards {
		close(s.ch)
	}
	for range p.shards {
		<-p.done
	}
	if derr != nil {
		// Not a log at all: shut down cleanly and surface the error.
		p.finErr = derr
		return nil, derr
	}

	var all []shardRace
	shardEvents := make([]uint64, len(p.shards))
	near := hb.NewNearAccum(p.opts.NearMissMargin)
	for i, s := range p.shards {
		all = append(all, s.races...)
		shardEvents[i] = s.events
		near.Merge(s.near)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ord != all[j].ord {
			return all[i].ord < all[j].ord
		}
		return all[i].sub < all[j].sub
	})

	res := &Result{
		Result:       p.res,
		Degradation:  p.deg,
		Salvage:      srep,
		Meta:         p.dec.Meta(),
		Complete:     p.dec.Complete(),
		Dispatched:   p.ordinal,
		ShardEvents:  shardEvents,
		Stalls:       p.m.Stalls(),
		Backpressure: p.backpres,
		Elapsed:      time.Since(p.start),
	}
	res.NearMisses = near.Rows()
	hb.PublishNearMisses(p.opts.Obs, res.NearMisses)
	res.NumRaces = uint64(len(all))
	p.obsRaces.Add(res.NumRaces)
	for _, sr := range all {
		if sr.r.Unconfirmed {
			res.Unconfirmed++
		}
		if p.opts.KeepMax == 0 || len(res.Races) < p.opts.KeepMax {
			res.Races = append(res.Races, sr.r)
		}
	}
	if sec := res.Elapsed.Seconds(); sec > 0 {
		res.EventsPerSec = float64(p.m.Delivered()) / sec
	}
	p.obsBacklog.Set(float64(p.m.Backlog()))
	p.obsHWM.Set(float64(p.m.BacklogHighWater()))
	p.obsStalls.Set(float64(p.m.Stalls()))
	p.obsEPS.Set(res.EventsPerSec)
	if reg := p.opts.Obs; reg != nil {
		total := res.Dispatched
		if total == 0 {
			total = 1
		}
		for i, n := range shardEvents {
			reg.Gauge(fmt.Sprintf("%s%d", ShardUtilGaugePrefix, i)).Set(float64(n) / float64(total))
		}
	}
	if p.depot != nil {
		agg := shadow.Stats{DepotStacks: p.depot.Len()}
		for _, s := range p.shards {
			st := s.eng.Stats()
			agg.Accesses += st.Accesses
			agg.FastpathHits += st.FastpathHits
			agg.Promotions += st.Promotions
			agg.Evictions += st.Evictions
			agg.Cells += st.Cells
		}
		res.Epoch = &agg
		if reg := p.opts.Obs; reg != nil {
			reg.Gauge("shadow.cells").Set(float64(agg.Cells))
			reg.Gauge("shadow.depot_stacks").Set(float64(agg.DepotStacks))
		}
	}
	p.finRes = res
	return res, nil
}
