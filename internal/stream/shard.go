package stream

import (
	"sync/atomic"
	"time"

	"literace/internal/hb"
	"literace/internal/lir"
	"literace/internal/obs"
	"literace/internal/obs/diag"
	"literace/internal/shadow"
)

// memAccess is one sampled memory event as dispatched to a shard: the
// decoded event fields it needs, the immutable snapshot of its thread's
// vector clock at access time, and the ordinals that make the sharded
// results mergeable back into replay order.
type memAccess struct {
	ord   uint64 // global dispatch ordinal (replay order of analyzed mem events)
	seq   uint64 // per-thread analyzed-memory ordinal (hb.DynamicRace.*Seq)
	addr  uint64
	tid   int32
	write bool
	pc    lir.PC
	vc    hb.VC              // immutable; shared across dispatches until the thread's clock changes
	ev    *hb.AccessEvidence // forensic snapshot; nil unless Options.Evidence
}

// shardRace is a race found by a shard, tagged with the ordinal of the
// access that triggered it and its index among the races that access
// produced, so the global merge can restore exact replay-order reporting.
type shardRace struct {
	r   hb.DynamicRace
	ord uint64
	sub int
}

// readRec and writeRec mirror hb's FastTrack-style compact access
// history: a scalar (tid, clock) epoch plus the attribution fields a race
// report needs.
type readRec struct {
	tid int32
	clk uint64
	pc  lir.PC
	seq uint64
	ev  *hb.AccessEvidence // nil unless evidence mode
}

type addrHist struct {
	hasWrite bool
	wTID     int32
	wClk     uint64
	wPC      lir.PC
	wSeq     uint64
	wEv      *hb.AccessEvidence // nil unless evidence mode
	reads    []readRec          // reads since the last ordered write
}

// shard is one detection worker: it owns the access histories of the
// addresses hashed to it and processes their events strictly in dispatch
// order, so its view of each address is identical to a batch detector's.
type shard struct {
	idx        int
	ch         chan []memAccess
	mem        map[uint64]*addrHist
	races      []shardRace
	events     uint64
	degradeOrd *atomic.Uint64
	onRace     func(hb.DynamicRace) // serialized by the pipeline; may be nil
	near       *hb.NearAccum        // near-miss accumulator; nil when disabled
	evCnt      *obs.Counter         // stream.shard_events.<idx>
	rec        *diag.Recorder       // flight recorder; may be nil

	// Epoch-engine state (Options.Engine == hb.EngineEpoch): eng
	// replaces the mem map as this shard's access-history store, and
	// curOrd carries the dispatch ordinal of the access under analysis
	// into the race callback.
	eng    *shadow.Engine
	curOrd uint64
}

// attachEpoch routes this shard's accesses through an epoch fast-path
// engine instead of the vector-clock history map. The depot is shared
// across all shards so race identities deduplicate globally; the obs
// counters are shared too (atomic increments).
func (s *shard) attachEpoch(depot *shadow.Depot, opts Options) {
	so := shadow.Options{
		MaxCells: opts.ShadowMaxCells,
		Depot:    depot,
		Obs:      opts.Obs,
		OnRace: func(prev shadow.Prev, cur *shadow.Access, sub int) {
			r := hb.DynamicRace{
				PrevPC: prev.PC, CurPC: cur.PC,
				PrevWrite: prev.Write, CurWrite: cur.Write,
				PrevTID: prev.TID, CurTID: cur.TID,
				PrevSeq: prev.Seq, CurSeq: cur.Seq,
				Addr: cur.Addr,
			}
			if prev.Ev != nil {
				r.PrevEvidence = prev.Ev.(*hb.AccessEvidence)
			}
			if cur.Ev != nil {
				r.CurEvidence = cur.Ev.(*hb.AccessEvidence)
			}
			s.report(r, s.curOrd, sub)
		},
	}
	if opts.NearMissMargin > 0 {
		so.OnOrdered = func(prevPC, curPC lir.PC, margin uint64) {
			s.near.Note(prevPC, curPC, margin)
		}
	}
	s.eng = shadow.NewEngine(so)
}

func (s *shard) run(done chan<- struct{}) {
	for batch := range s.ch {
		var t0 time.Time
		if s.rec != nil {
			t0 = time.Now()
		}
		for _, a := range batch {
			s.access(a)
		}
		s.events += uint64(len(batch))
		s.evCnt.Add(uint64(len(batch)))
		if s.rec != nil {
			s.rec.Span(diag.StageShardDetect, int32(s.idx), t0, time.Since(t0),
				batch[len(batch)-1].ord, uint64(len(batch)))
		}
	}
	done <- struct{}{}
}

// access mirrors hb.Detector's per-event analysis exactly, plus the
// same-thread epoch fast path: a write by the thread that already owns
// the address's last write, with no reads pending, cannot race — the
// epoch advances without touching the vector-clock snapshot at all.
func (s *shard) access(a memAccess) {
	if s.eng != nil {
		s.curOrd = a.ord
		switch {
		case a.ev != nil && a.write:
			s.eng.WriteEv(a.addr, a.seq, a.tid, a.pc, a.vc, a.ev)
		case a.ev != nil:
			s.eng.ReadEv(a.addr, a.seq, a.tid, a.pc, a.vc, a.ev)
		case a.write:
			s.eng.Write(a.addr, a.seq, a.tid, a.pc, a.vc)
		default:
			s.eng.Read(a.addr, a.seq, a.tid, a.pc, a.vc)
		}
		return
	}
	st := s.mem[a.addr]
	if st == nil {
		st = &addrHist{}
		s.mem[a.addr] = st
	}
	if a.write && st.hasWrite && st.wTID == a.tid && len(st.reads) == 0 {
		st.wClk = a.vc.At(a.tid)
		st.wPC = a.pc
		st.wSeq = a.seq
		st.wEv = a.ev
		return
	}
	nowClk := a.vc.At(a.tid)
	sub := 0

	if st.hasWrite && st.wTID != a.tid {
		if st.wClk > a.vc.At(st.wTID) {
			s.report(hb.DynamicRace{
				PrevPC: st.wPC, CurPC: a.pc,
				PrevWrite: true, CurWrite: a.write,
				PrevTID: st.wTID, CurTID: a.tid,
				PrevSeq: st.wSeq, CurSeq: a.seq,
				Addr:         a.addr,
				PrevEvidence: st.wEv, CurEvidence: a.ev,
			}, a.ord, sub)
			sub++
		} else {
			s.near.Note(st.wPC, a.pc, a.vc.At(st.wTID)-st.wClk)
		}
	}

	if a.write {
		for _, r := range st.reads {
			if r.tid == a.tid {
				continue
			}
			if r.clk > a.vc.At(r.tid) {
				s.report(hb.DynamicRace{
					PrevPC: r.pc, CurPC: a.pc,
					PrevWrite: false, CurWrite: true,
					PrevTID: r.tid, CurTID: a.tid,
					PrevSeq: r.seq, CurSeq: a.seq,
					Addr:         a.addr,
					PrevEvidence: r.ev, CurEvidence: a.ev,
				}, a.ord, sub)
				sub++
			} else {
				s.near.Note(r.pc, a.pc, a.vc.At(r.tid)-r.clk)
			}
		}
		st.hasWrite = true
		st.wTID = a.tid
		st.wClk = nowClk
		st.wPC = a.pc
		st.wSeq = a.seq
		st.wEv = a.ev
		st.reads = st.reads[:0]
		return
	}

	// Record the read, replacing any earlier read by the same thread
	// (program order makes the newer one dominate).
	for i := range st.reads {
		if st.reads[i].tid == a.tid {
			st.reads[i] = readRec{tid: a.tid, clk: nowClk, pc: a.pc, seq: a.seq, ev: a.ev}
			return
		}
	}
	st.reads = append(st.reads, readRec{tid: a.tid, clk: nowClk, pc: a.pc, seq: a.seq, ev: a.ev})
}

func (s *shard) report(r hb.DynamicRace, ord uint64, sub int) {
	if ord >= s.degradeOrd.Load() {
		r.Unconfirmed = true
	}
	s.races = append(s.races, shardRace{r: r, ord: ord, sub: sub})
	if s.onRace != nil {
		s.onRace(r)
	}
}
