package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"literace/internal/obs"
)

// Binary layout (LTRC2, the current version):
//
//	file   := magic chunk*
//	magic  := "LTRC2\n"
//	chunk  := marker[4] uvarint(tag) uvarint(len) payload[len] crc32le[4]
//	marker := F7 "LT2"
//	tag    := 0            ; metadata trailer (JSON Meta)
//	        | 1            ; checkpoint (JSON Meta snapshot, best effort)
//	        | tid + 2      ; event chunk for thread tid
//	payload (tid chunk)  := uvarint(seq) event*       ; seq is 1,2,3,... per thread
//	payload (meta/ckpt)  := JSON-encoded Meta
//	event  := kind byte, op byte, then per-kind varints:
//	          mem:  pcFunc pcIndex addr mask
//	          sync: pcFunc pcIndex addr counter ts
//	          sched markers reuse the sync layout: addr is the global slice
//	          index, counter is 0, and ts is the virtual instruction clock
//
// The CRC32 (IEEE, little-endian) covers the tag and length varints plus
// the payload, so any corruption inside a chunk is detectable, and the
// marker gives the salvage decoder a resynchronization point after
// corruption. Per-thread sequence numbers make dropped or duplicated
// chunks detectable. Checkpoints carry the run counters accumulated so
// far, so a log truncated by a crash still has usable metadata.
//
// Chunks from the same thread appear in program order; chunks from
// different threads interleave arbitrarily (each thread flushes its own
// buffer, mirroring the paper's per-thread log buffers).
//
// ReadAll also accepts the legacy LTRC1 format (no markers, CRCs,
// sequence numbers, or checkpoints; thread chunks use tag tid+1).

const (
	magicV1 = "LTRC1\n"
	magic   = "LTRC2\n"

	// tag namespace of LTRC2 chunks.
	tagMeta       = 0
	tagCheckpoint = 1
	tagThreadBase = 2

	// maxChunkLen bounds the declared chunk length so a corrupt uvarint
	// cannot drive an unbounded allocation. The writer never produces
	// chunks anywhere near this size (flushThreshold plus one event).
	maxChunkLen = 1 << 20

	// checkpointInterval is how many encoded bytes may elapse between
	// metadata checkpoints.
	checkpointInterval = 1 << 16
)

// chunkMarker precedes every LTRC2 chunk; the salvage decoder scans for
// it to resynchronize after corruption.
var chunkMarker = [4]byte{0xF7, 'L', 'T', '2'}

// Meta is the run metadata written as the log trailer (and, partially, in
// periodic checkpoint chunks). It carries the counters the evaluation
// needs: total memory operations for effective sampling rates (Table 3),
// non-stack memory instructions for the rare/frequent classification
// (Table 4), and cost-model cycles for the overhead tables (Table 5,
// Figure 6).
type Meta struct {
	Module  string `json:"module"`
	Seed    int64  `json:"seed"`
	Threads int    `json:"threads"`

	Instrs      uint64 `json:"instrs"`       // dynamic instructions executed
	MemOps      uint64 `json:"mem_ops"`      // dynamic data accesses (load/store)
	StackMemOps uint64 `json:"stack_ops"`    // subset of MemOps touching thread stacks
	SyncOps     uint64 `json:"sync_ops"`     // dynamic synchronization operations
	Cycles      uint64 `json:"cycles"`       // virtual cycles including instrumentation cost
	BaseCycles  uint64 `json:"base_cycles"`  // virtual cycles excluding instrumentation cost
	WallNanos   int64  `json:"wall_nanos"`   // wall-clock run time
	LoggedBytes uint64 `json:"logged_bytes"` // encoded log size

	// Samplers holds the mask-bit order: bit i of a memory event's Mask is
	// set when Samplers[i] would have logged the event.
	Samplers []string `json:"samplers"`
	// SampledOps[i] counts memory operations sampler i would have logged.
	SampledOps []uint64 `json:"sampled_ops"`
	// Primary is the sampler that actually controlled instrumentation.
	Primary string `json:"primary"`
}

// EffectiveRate returns sampler i's effective sampling rate: the fraction
// of memory operations it logged (§5.2).
func (m *Meta) EffectiveRate(i int) float64 {
	if m.MemOps == 0 || i >= len(m.SampledOps) {
		return 0
	}
	return float64(m.SampledOps[i]) / float64(m.MemOps)
}

// SamplerIndex returns the mask bit for the named sampler, or -1.
func (m *Meta) SamplerIndex(name string) int {
	for i, s := range m.Samplers {
		if s == name {
			return i
		}
	}
	return -1
}

// Writer encodes events to an underlying io.Writer. Each thread appends to
// its own buffer via a ThreadWriter; buffers flush as chunks under a mutex.
type Writer struct {
	mu      sync.Mutex
	w       *bufio.Writer
	written uint64
	err     error
	threads map[int32]*ThreadWriter
	closed  bool

	lastCkpt   uint64      // written watermark of the last checkpoint
	metaSource func() Meta // optional snapshot provider for checkpoints

	// Telemetry instruments; all nil when observability is disabled.
	obsReg    *obs.Registry
	obsBytes  *obs.Counter // trace.bytes_written
	obsChunks *obs.Counter // trace.chunks_flushed
	obsEvents *obs.Counter // trace.events_appended
}

// flushThreshold is the per-thread buffer size that triggers a chunk flush.
const flushThreshold = 1 << 14

// NewWriter starts a log on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	return &Writer{
		w:        bw,
		written:  uint64(len(magic)),
		lastCkpt: uint64(len(magic)),
		threads:  make(map[int32]*ThreadWriter),
	}, nil
}

// SetObs attaches telemetry instruments to the writer: bytes written,
// chunk flushes, events appended, and per-thread flush counters. Call
// before the first Thread call; nil disables (the default).
func (w *Writer) SetObs(r *obs.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.obsReg = r
	w.obsBytes = r.Counter("trace.bytes_written")
	w.obsChunks = r.Counter("trace.chunks_flushed")
	w.obsEvents = r.Counter("trace.events_appended")
	w.obsBytes.Add(w.written) // account for the magic already emitted
}

// SetMetaSource registers a callback that snapshots the run counters
// accumulated so far. The writer invokes it when emitting periodic
// checkpoint chunks, so a log truncated by a crash still carries usable
// metadata. The callback runs under the writer lock and must not call
// back into the Writer. Nil (the default) makes checkpoints carry only
// the writer's own byte count.
func (w *Writer) SetMetaSource(f func() Meta) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.metaSource = f
}

// Thread returns the per-thread writer for tid, creating it on first use.
func (w *Writer) Thread(tid int32) *ThreadWriter {
	w.mu.Lock()
	defer w.mu.Unlock()
	tw := w.threads[tid]
	if tw == nil {
		tw = &ThreadWriter{parent: w, tid: tid, obsEvents: w.obsEvents}
		if w.obsReg != nil {
			tw.obsFlushes = w.obsReg.Counter(fmt.Sprintf("trace.thread_flushes.t%d", tid))
		}
		w.threads[tid] = tw
	}
	return tw
}

// flushChunk writes one chunk and, after thread chunks, a metadata
// checkpoint when enough bytes have elapsed; callers hold no locks.
func (w *Writer) flushChunk(tag uint64, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.flushChunkLocked(tag, payload); err != nil {
		return err
	}
	if tag >= tagThreadBase && w.written-w.lastCkpt >= checkpointInterval {
		return w.writeCheckpointLocked()
	}
	return nil
}

func (w *Writer) flushChunkLocked(tag uint64, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	var hdr [4 + 2*binary.MaxVarintLen64]byte
	copy(hdr[:4], chunkMarker[:])
	n := 4 + binary.PutUvarint(hdr[4:], tag)
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[4:n])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc)
	if _, err := w.w.Write(hdr[:n]); err != nil {
		w.err = fmt.Errorf("trace: %w", err)
		return w.err
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = fmt.Errorf("trace: %w", err)
		return w.err
	}
	if _, err := w.w.Write(crcb[:]); err != nil {
		w.err = fmt.Errorf("trace: %w", err)
		return w.err
	}
	w.written += uint64(n + len(payload) + 4)
	w.obsBytes.Add(uint64(n + len(payload) + 4))
	w.obsChunks.Inc()
	return nil
}

// writeCheckpointLocked emits a tag-1 checkpoint chunk carrying the best
// counter snapshot available.
func (w *Writer) writeCheckpointLocked() error {
	var meta Meta
	if w.metaSource != nil {
		meta = w.metaSource()
	}
	meta.LoggedBytes = w.written
	payload, err := json.Marshal(&meta)
	if err != nil {
		return fmt.Errorf("trace: encoding checkpoint: %w", err)
	}
	if err := w.flushChunkLocked(tagCheckpoint, payload); err != nil {
		return err
	}
	w.lastCkpt = w.written
	return nil
}

// Close flushes all thread buffers, writes the metadata trailer, and
// flushes the underlying writer. meta.LoggedBytes is filled in by Close.
func (w *Writer) Close(meta Meta) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errors.New("trace: writer already closed")
	}
	w.closed = true
	tws := make([]*ThreadWriter, 0, len(w.threads))
	for _, tw := range w.threads {
		tws = append(tws, tw)
	}
	w.mu.Unlock()
	// Flush in thread order, not map order: the final chunks' positions
	// are part of the log's canonical arrival order (replay delivers by
	// chunk order), so a deterministic execution must close into a log
	// with a deterministic chunk sequence.
	sort.Slice(tws, func(i, j int) bool { return tws[i].tid < tws[j].tid })

	for _, tw := range tws {
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	meta.LoggedBytes = w.written
	payload, err := json.Marshal(&meta)
	if err != nil {
		return fmt.Errorf("trace: encoding meta: %w", err)
	}
	if err := w.flushChunkLocked(tagMeta, payload); err != nil {
		return err
	}
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.err
}

// BytesWritten returns the number of encoded bytes emitted so far.
func (w *Writer) BytesWritten() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// ThreadWriter buffers one thread's events.
type ThreadWriter struct {
	parent *Writer
	tid    int32
	buf    []byte
	count  uint64
	seq    uint64 // sequence number of the last flushed chunk

	obsEvents  *obs.Counter // shared trace.events_appended
	obsFlushes *obs.Counter // trace.thread_flushes.t<tid>
}

// Append encodes one event into the thread buffer.
func (tw *ThreadWriter) Append(e Event) error {
	tw.buf = appendEvent(tw.buf, e)
	tw.count++
	tw.obsEvents.Inc()
	if len(tw.buf) >= flushThreshold {
		return tw.Flush()
	}
	return nil
}

// Count returns the number of events appended to this thread.
func (tw *ThreadWriter) Count() uint64 { return tw.count }

// Flush writes the buffered events as one chunk, prefixed with this
// thread's next sequence number.
func (tw *ThreadWriter) Flush() error {
	if len(tw.buf) == 0 {
		return nil
	}
	tw.seq++
	payload := make([]byte, 0, binary.MaxVarintLen64+len(tw.buf))
	payload = binary.AppendUvarint(payload, tw.seq)
	payload = append(payload, tw.buf...)
	err := tw.parent.flushChunk(uint64(uint32(tw.tid))+tagThreadBase, payload)
	tw.buf = tw.buf[:0]
	tw.obsFlushes.Inc()
	return err
}

func appendEvent(buf []byte, e Event) []byte {
	buf = append(buf, byte(e.Kind), byte(e.Op))
	buf = binary.AppendUvarint(buf, uint64(uint32(e.PC.Func)))
	buf = binary.AppendUvarint(buf, uint64(uint32(e.PC.Index)))
	buf = binary.AppendUvarint(buf, e.Addr)
	if e.Kind.IsMem() {
		buf = binary.AppendUvarint(buf, uint64(e.Mask))
	} else {
		buf = append(buf, e.Counter)
		buf = binary.AppendUvarint(buf, e.TS)
	}
	return buf
}

// Log is a fully decoded trace: per-thread event sequences in program
// order plus run metadata.
type Log struct {
	Meta    Meta
	Threads map[int32][]Event

	// Degraded, when non-nil, marks the per-thread event index from which
	// the stream follows a salvage loss (a dropped chunk or sequence gap):
	// orderings derived from events at or past that index are suspect.
	// ReadAll always leaves it nil; Salvage fills it in.
	Degraded map[int32]int

	// ChunkOrder lists the accepted thread chunks in the byte order they
	// appear in the encoded log: entry i says "the next N events of thread
	// TID". Replay uses it as the canonical arrival order, which is what
	// lets the online pipeline (fed chunk by chunk) and a batch pass over
	// the same bytes reach identical results. Nil for hand-built logs;
	// replay then treats each per-thread stream as one batch.
	ChunkOrder []ChunkRef
}

// ChunkRef locates one thread chunk within Log.ChunkOrder: the next N
// events of thread TID.
type ChunkRef struct {
	TID int32
	N   int
}

// NumEvents returns the total event count across threads.
func (l *Log) NumEvents() int {
	n := 0
	for _, evs := range l.Threads {
		n += len(evs)
	}
	return n
}

// TIDs returns the thread ids present in the log, ascending.
func (l *Log) TIDs() []int32 {
	out := make([]int32, 0, len(l.Threads))
	for tid := range l.Threads {
		out = append(out, tid)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ReadAll decodes a complete log from r: LTRC2 (with every CRC, sequence
// number, and the metadata trailer verified) or the legacy LTRC1 format.
// Any truncation, corruption, or gap is an error; use Salvage to extract
// a best-effort log from damaged input.
func ReadAll(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch string(got) {
	case magic:
		return readAllV2(br)
	case magicV1:
		return readAllV1(br)
	}
	return nil, fmt.Errorf("trace: bad magic %q", got)
}

// readAllV2 strictly decodes the LTRC2 chunk stream.
func readAllV2(br *bufio.Reader) (*Log, error) {
	log := &Log{Threads: make(map[int32][]Event)}
	sawMeta := false
	lastSeq := make(map[int32]uint64)
	for {
		var mk [4]byte
		if _, err := io.ReadFull(br, mk[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: reading chunk marker: %w", err)
		}
		if mk != chunkMarker {
			return nil, fmt.Errorf("trace: bad chunk marker % x", mk[:])
		}
		tag, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading chunk tag: %w", err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading chunk size: %w", err)
		}
		if size > maxChunkLen {
			return nil, fmt.Errorf("trace: chunk length %d exceeds limit %d", size, maxChunkLen)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("trace: reading chunk payload: %w", err)
		}
		var crcb [4]byte
		if _, err := io.ReadFull(br, crcb[:]); err != nil {
			return nil, fmt.Errorf("trace: reading chunk crc: %w", err)
		}
		if got, want := binary.LittleEndian.Uint32(crcb[:]), chunkCRC(tag, payload); got != want {
			return nil, fmt.Errorf("trace: chunk crc mismatch (have %#x, want %#x)", got, want)
		}
		switch {
		case tag == tagMeta:
			if err := json.Unmarshal(payload, &log.Meta); err != nil {
				return nil, fmt.Errorf("trace: decoding meta: %w", err)
			}
			sawMeta = true
		case tag == tagCheckpoint:
			// Checkpoints only matter for salvage; a complete log carries
			// its trailer, so validate the JSON and move on.
			var ckpt Meta
			if err := json.Unmarshal(payload, &ckpt); err != nil {
				return nil, fmt.Errorf("trace: decoding checkpoint: %w", err)
			}
		default:
			tid := int32(uint32(tag - tagThreadBase))
			seq, rest, err := takeUvarint(payload)
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d chunk sequence: %w", tid, err)
			}
			if seq != lastSeq[tid]+1 {
				return nil, fmt.Errorf("trace: thread %d chunk sequence gap (have %d, want %d)",
					tid, seq, lastSeq[tid]+1)
			}
			lastSeq[tid] = seq
			evs, err := decodeEvents(tid, rest)
			if err != nil {
				return nil, err
			}
			log.Threads[tid] = append(log.Threads[tid], evs...)
			if len(evs) > 0 {
				log.ChunkOrder = append(log.ChunkOrder, ChunkRef{TID: tid, N: len(evs)})
			}
		}
	}
	if !sawMeta {
		return nil, errors.New("trace: truncated log: no metadata trailer")
	}
	return log, nil
}

// chunkCRC computes the CRC an LTRC2 chunk must carry: IEEE CRC32 over
// the (minimally encoded) tag and length varints plus the payload.
func chunkCRC(tag uint64, payload []byte) uint32 {
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], tag)
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[:n])
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// readAllV1 decodes the legacy LTRC1 chunk stream.
func readAllV1(br *bufio.Reader) (*Log, error) {
	log := &Log{Threads: make(map[int32][]Event)}
	sawMeta := false
	for {
		tag, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading chunk tag: %w", err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading chunk size: %w", err)
		}
		payload, err := readPayload(br, size)
		if err != nil {
			return nil, fmt.Errorf("trace: reading chunk payload: %w", err)
		}
		if tag == 0 {
			if err := json.Unmarshal(payload, &log.Meta); err != nil {
				return nil, fmt.Errorf("trace: decoding meta: %w", err)
			}
			sawMeta = true
			continue
		}
		tid := int32(uint32(tag - 1))
		evs, err := decodeEvents(tid, payload)
		if err != nil {
			return nil, err
		}
		log.Threads[tid] = append(log.Threads[tid], evs...)
		if len(evs) > 0 {
			log.ChunkOrder = append(log.ChunkOrder, ChunkRef{TID: tid, N: len(evs)})
		}
	}
	if !sawMeta {
		return nil, errors.New("trace: truncated log: no metadata trailer")
	}
	return log, nil
}

// readPayload reads size bytes in bounded steps, so a corrupt length
// uvarint claiming gigabytes allocates no more than roughly what the
// input actually contains before failing at EOF.
func readPayload(r io.Reader, size uint64) ([]byte, error) {
	const step = 64 << 10
	if size <= step {
		buf := make([]byte, size)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, step)
	for remaining := size; remaining > 0; {
		n := uint64(step)
		if remaining < n {
			n = remaining
		}
		off := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
		remaining -= n
	}
	return buf, nil
}

func decodeEvents(tid int32, payload []byte) ([]Event, error) {
	evs, n, err := decodeEventsPrefix(tid, payload)
	if err != nil {
		return nil, err
	}
	if n != len(payload) {
		return nil, errors.New("trace: trailing bytes after events")
	}
	return evs, nil
}

// decodeEventsPrefix decodes as many complete events as payload holds,
// returning them alongside the number of bytes consumed. A decode failure
// returns the events decoded so far, the offset of the bad event, and the
// error; the salvage decoder keeps the prefix.
func decodeEventsPrefix(tid int32, payload []byte) ([]Event, int, error) {
	var evs []Event
	total := len(payload)
	for len(payload) > 0 {
		consumed := total - len(payload)
		if len(payload) < 2 {
			return evs, consumed, errors.New("trace: truncated event header")
		}
		e := Event{Kind: Kind(payload[0]), Op: SyncOp(payload[1]), TID: tid}
		if e.Kind >= numKinds {
			return evs, consumed, fmt.Errorf("trace: bad event kind %d", e.Kind)
		}
		if e.Op >= numSyncOps {
			return evs, consumed, fmt.Errorf("trace: bad sync op %d", e.Op)
		}
		rest := payload[2:]
		var err error
		var v uint64
		if v, rest, err = takeUvarint(rest); err != nil {
			return evs, consumed, err
		}
		e.PC.Func = int32(uint32(v))
		if v, rest, err = takeUvarint(rest); err != nil {
			return evs, consumed, err
		}
		e.PC.Index = int32(uint32(v))
		if e.Addr, rest, err = takeUvarint(rest); err != nil {
			return evs, consumed, err
		}
		if e.Kind.IsMem() {
			if v, rest, err = takeUvarint(rest); err != nil {
				return evs, consumed, err
			}
			e.Mask = uint32(v)
		} else {
			if len(rest) < 1 {
				return evs, consumed, errors.New("trace: truncated sync event")
			}
			e.Counter = rest[0]
			rest = rest[1:]
			if e.TS, rest, err = takeUvarint(rest); err != nil {
				return evs, consumed, err
			}
		}
		payload = rest
		evs = append(evs, e)
	}
	return evs, total, nil
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errors.New("trace: truncated varint")
	}
	return v, b[n:], nil
}
