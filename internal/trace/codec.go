package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"literace/internal/obs"
)

// Binary layout:
//
//	file   := magic chunk*
//	magic  := "LTRC1\n"
//	chunk  := tag uvarint(len) payload[len]
//	tag    := uvarint(tid + 1)   ; tag 0 is the metadata chunk
//	payload (tid chunk)  := event*
//	payload (meta chunk) := JSON-encoded Meta
//	event  := kind byte, op byte, then per-kind varints:
//	          mem:  pcFunc pcIndex addr mask
//	          sync: pcFunc pcIndex addr counter ts
//
// Chunks from the same thread appear in program order; chunks from
// different threads interleave arbitrarily (each thread flushes its own
// buffer, mirroring the paper's per-thread log buffers).

const magic = "LTRC1\n"

// Meta is the run metadata written as the log trailer. It carries the
// counters the evaluation needs: total memory operations for effective
// sampling rates (Table 3), non-stack memory instructions for the
// rare/frequent classification (Table 4), and cost-model cycles for the
// overhead tables (Table 5, Figure 6).
type Meta struct {
	Module  string `json:"module"`
	Seed    int64  `json:"seed"`
	Threads int    `json:"threads"`

	Instrs      uint64 `json:"instrs"`       // dynamic instructions executed
	MemOps      uint64 `json:"mem_ops"`      // dynamic data accesses (load/store)
	StackMemOps uint64 `json:"stack_ops"`    // subset of MemOps touching thread stacks
	SyncOps     uint64 `json:"sync_ops"`     // dynamic synchronization operations
	Cycles      uint64 `json:"cycles"`       // virtual cycles including instrumentation cost
	BaseCycles  uint64 `json:"base_cycles"`  // virtual cycles excluding instrumentation cost
	WallNanos   int64  `json:"wall_nanos"`   // wall-clock run time
	LoggedBytes uint64 `json:"logged_bytes"` // encoded log size

	// Samplers holds the mask-bit order: bit i of a memory event's Mask is
	// set when Samplers[i] would have logged the event.
	Samplers []string `json:"samplers"`
	// SampledOps[i] counts memory operations sampler i would have logged.
	SampledOps []uint64 `json:"sampled_ops"`
	// Primary is the sampler that actually controlled instrumentation.
	Primary string `json:"primary"`
}

// EffectiveRate returns sampler i's effective sampling rate: the fraction
// of memory operations it logged (§5.2).
func (m *Meta) EffectiveRate(i int) float64 {
	if m.MemOps == 0 || i >= len(m.SampledOps) {
		return 0
	}
	return float64(m.SampledOps[i]) / float64(m.MemOps)
}

// SamplerIndex returns the mask bit for the named sampler, or -1.
func (m *Meta) SamplerIndex(name string) int {
	for i, s := range m.Samplers {
		if s == name {
			return i
		}
	}
	return -1
}

// Writer encodes events to an underlying io.Writer. Each thread appends to
// its own buffer via a ThreadWriter; buffers flush as chunks under a mutex.
type Writer struct {
	mu      sync.Mutex
	w       *bufio.Writer
	written uint64
	err     error
	threads map[int32]*ThreadWriter
	closed  bool

	// Telemetry instruments; all nil when observability is disabled.
	obsReg    *obs.Registry
	obsBytes  *obs.Counter // trace.bytes_written
	obsChunks *obs.Counter // trace.chunks_flushed
	obsEvents *obs.Counter // trace.events_appended
}

// flushThreshold is the per-thread buffer size that triggers a chunk flush.
const flushThreshold = 1 << 14

// NewWriter starts a log on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	return &Writer{w: bw, written: uint64(len(magic)), threads: make(map[int32]*ThreadWriter)}, nil
}

// SetObs attaches telemetry instruments to the writer: bytes written,
// chunk flushes, events appended, and per-thread flush counters. Call
// before the first Thread call; nil disables (the default).
func (w *Writer) SetObs(r *obs.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.obsReg = r
	w.obsBytes = r.Counter("trace.bytes_written")
	w.obsChunks = r.Counter("trace.chunks_flushed")
	w.obsEvents = r.Counter("trace.events_appended")
	w.obsBytes.Add(w.written) // account for the magic already emitted
}

// Thread returns the per-thread writer for tid, creating it on first use.
func (w *Writer) Thread(tid int32) *ThreadWriter {
	w.mu.Lock()
	defer w.mu.Unlock()
	tw := w.threads[tid]
	if tw == nil {
		tw = &ThreadWriter{parent: w, tid: tid, obsEvents: w.obsEvents}
		if w.obsReg != nil {
			tw.obsFlushes = w.obsReg.Counter(fmt.Sprintf("trace.thread_flushes.t%d", tid))
		}
		w.threads[tid] = tw
	}
	return tw
}

// flushChunk writes one chunk; callers hold no locks.
func (w *Writer) flushChunk(tag uint64, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushChunkLocked(tag, payload)
}

func (w *Writer) flushChunkLocked(tag uint64, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], tag)
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		w.err = fmt.Errorf("trace: %w", err)
		return w.err
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = fmt.Errorf("trace: %w", err)
		return w.err
	}
	w.written += uint64(n + len(payload))
	w.obsBytes.Add(uint64(n + len(payload)))
	w.obsChunks.Inc()
	return nil
}

// Close flushes all thread buffers, writes the metadata trailer, and
// flushes the underlying writer. meta.LoggedBytes is filled in by Close.
func (w *Writer) Close(meta Meta) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errors.New("trace: writer already closed")
	}
	w.closed = true
	tws := make([]*ThreadWriter, 0, len(w.threads))
	for _, tw := range w.threads {
		tws = append(tws, tw)
	}
	w.mu.Unlock()

	for _, tw := range tws {
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	meta.LoggedBytes = w.written
	payload, err := json.Marshal(&meta)
	if err != nil {
		return fmt.Errorf("trace: encoding meta: %w", err)
	}
	if err := w.flushChunkLocked(0, payload); err != nil {
		return err
	}
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.err
}

// BytesWritten returns the number of encoded bytes emitted so far.
func (w *Writer) BytesWritten() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// ThreadWriter buffers one thread's events.
type ThreadWriter struct {
	parent *Writer
	tid    int32
	buf    []byte
	count  uint64

	obsEvents  *obs.Counter // shared trace.events_appended
	obsFlushes *obs.Counter // trace.thread_flushes.t<tid>
}

// Append encodes one event into the thread buffer.
func (tw *ThreadWriter) Append(e Event) error {
	tw.buf = appendEvent(tw.buf, e)
	tw.count++
	tw.obsEvents.Inc()
	if len(tw.buf) >= flushThreshold {
		return tw.Flush()
	}
	return nil
}

// Count returns the number of events appended to this thread.
func (tw *ThreadWriter) Count() uint64 { return tw.count }

// Flush writes the buffered events as one chunk.
func (tw *ThreadWriter) Flush() error {
	if len(tw.buf) == 0 {
		return nil
	}
	err := tw.parent.flushChunk(uint64(uint32(tw.tid))+1, tw.buf)
	tw.buf = tw.buf[:0]
	tw.obsFlushes.Inc()
	return err
}

func appendEvent(buf []byte, e Event) []byte {
	buf = append(buf, byte(e.Kind), byte(e.Op))
	buf = binary.AppendUvarint(buf, uint64(uint32(e.PC.Func)))
	buf = binary.AppendUvarint(buf, uint64(uint32(e.PC.Index)))
	buf = binary.AppendUvarint(buf, e.Addr)
	if e.Kind.IsMem() {
		buf = binary.AppendUvarint(buf, uint64(e.Mask))
	} else {
		buf = append(buf, e.Counter)
		buf = binary.AppendUvarint(buf, e.TS)
	}
	return buf
}

// Log is a fully decoded trace: per-thread event sequences in program
// order plus run metadata.
type Log struct {
	Meta    Meta
	Threads map[int32][]Event
}

// NumEvents returns the total event count across threads.
func (l *Log) NumEvents() int {
	n := 0
	for _, evs := range l.Threads {
		n += len(evs)
	}
	return n
}

// TIDs returns the thread ids present in the log, ascending.
func (l *Log) TIDs() []int32 {
	out := make([]int32, 0, len(l.Threads))
	for tid := range l.Threads {
		out = append(out, tid)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ReadAll decodes a complete log from r.
func ReadAll(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	log := &Log{Threads: make(map[int32][]Event)}
	sawMeta := false
	for {
		tag, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading chunk tag: %w", err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading chunk size: %w", err)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("trace: reading chunk payload: %w", err)
		}
		if tag == 0 {
			if err := json.Unmarshal(payload, &log.Meta); err != nil {
				return nil, fmt.Errorf("trace: decoding meta: %w", err)
			}
			sawMeta = true
			continue
		}
		tid := int32(uint32(tag - 1))
		evs, err := decodeEvents(tid, payload)
		if err != nil {
			return nil, err
		}
		log.Threads[tid] = append(log.Threads[tid], evs...)
	}
	if !sawMeta {
		return nil, errors.New("trace: truncated log: no metadata trailer")
	}
	return log, nil
}

func decodeEvents(tid int32, payload []byte) ([]Event, error) {
	var evs []Event
	for len(payload) > 0 {
		if len(payload) < 2 {
			return nil, errors.New("trace: truncated event header")
		}
		e := Event{Kind: Kind(payload[0]), Op: SyncOp(payload[1]), TID: tid}
		if e.Kind >= numKinds {
			return nil, fmt.Errorf("trace: bad event kind %d", e.Kind)
		}
		if e.Op >= numSyncOps {
			return nil, fmt.Errorf("trace: bad sync op %d", e.Op)
		}
		payload = payload[2:]
		var err error
		var v uint64
		if v, payload, err = takeUvarint(payload); err != nil {
			return nil, err
		}
		e.PC.Func = int32(uint32(v))
		if v, payload, err = takeUvarint(payload); err != nil {
			return nil, err
		}
		e.PC.Index = int32(uint32(v))
		if e.Addr, payload, err = takeUvarint(payload); err != nil {
			return nil, err
		}
		if e.Kind.IsMem() {
			if v, payload, err = takeUvarint(payload); err != nil {
				return nil, err
			}
			e.Mask = uint32(v)
		} else {
			if len(payload) < 1 {
				return nil, errors.New("trace: truncated sync event")
			}
			e.Counter = payload[0]
			payload = payload[1:]
			if e.TS, payload, err = takeUvarint(payload); err != nil {
				return nil, err
			}
		}
		evs = append(evs, e)
	}
	return evs, nil
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errors.New("trace: truncated varint")
	}
	return v, b[n:], nil
}
