// Package trace defines LiteRace's event log: the synchronization and
// sampled-memory-access records the instrumented program emits, a compact
// binary encoding with per-thread buffering (the paper writes logs to disk
// and analyzes them offline, §4.4), and the 128-way hashed timestamp
// counter scheme of §4.2.
package trace

import (
	"fmt"

	"literace/internal/lir"
)

// NumCounters is the number of logical timestamp counters. A single global
// counter would serialize every synchronization operation in the program;
// the paper instead uses "one of 128 counters uniquely determined by a
// hash of the SyncVar".
const NumCounters = 128

// CounterOf returns the timestamp counter used for a SyncVar.
func CounterOf(syncVar uint64) uint8 {
	// splitmix64 finalizer: cheap, well-mixed.
	x := syncVar
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint8(x & (NumCounters - 1))
}

// SyncVar namespaces. Lock/event SyncVars are plain memory addresses;
// thread lifecycle operations synchronize on the child thread id (Table 1)
// and allocation synchronizes on the page (§4.3). High bits keep the three
// namespaces disjoint.
const (
	threadVarBit = uint64(1) << 63
	pageVarBit   = uint64(1) << 62
)

// ThreadVar returns the SyncVar for thread lifecycle events of thread tid.
func ThreadVar(tid int32) uint64 { return threadVarBit | uint64(uint32(tid)) }

// PageVar returns the SyncVar for allocation events on a page.
func PageVar(page uint64) uint64 { return pageVarBit | page }

// Kind classifies an event by its happens-before role.
type Kind uint8

const (
	// KindRead and KindWrite are sampled data accesses.
	KindRead Kind = iota
	KindWrite
	// KindAcquire joins the SyncVar's clock into the thread (lock, wait
	// return, join return, thread start).
	KindAcquire
	// KindRelease publishes the thread's clock to the SyncVar (unlock,
	// notify, fork, thread end).
	KindRelease
	// KindAcqRel does both, in release-then-acquire order (atomic
	// read-modify-write ops, allocation/free page synchronization).
	KindAcqRel
	// KindSched is a scheduler marker (slice begin/end): it carries no
	// happens-before meaning and is ignored by the detectors, but gives
	// the timeline exporter real execution-time boundaries. Addr holds the
	// global slice index and TS the virtual instruction clock at the
	// boundary; Op distinguishes begin, voluntary end, and preemption.
	KindSched

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindAcquire:
		return "acquire"
	case KindRelease:
		return "release"
	case KindAcqRel:
		return "acqrel"
	case KindSched:
		return "sched"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMem reports whether the event is a sampled memory access.
func (k Kind) IsMem() bool { return k == KindRead || k == KindWrite }

// IsSync reports whether the event participates in happens-before edges.
func (k Kind) IsSync() bool { return k == KindAcquire || k == KindRelease || k == KindAcqRel }

// IsSched reports whether the event is a scheduler marker.
func (k Kind) IsSched() bool { return k == KindSched }

// SyncOp records which source operation produced a sync event; it does not
// affect happens-before semantics but makes reports readable and lets the
// lockset detector recover lock ownership.
type SyncOp uint8

const (
	OpNone SyncOp = iota
	OpLock
	OpUnlock
	OpWait
	OpNotify
	OpFork
	OpForkChild // thread start, the child half of fork
	OpJoin
	OpThreadEnd
	OpCas
	OpXadd
	OpXchg
	OpAlloc
	OpFree
	// OpSliceBegin/OpSliceEnd/OpSlicePreempt are KindSched operations:
	// a scheduling slice started, ended voluntarily (block, yield, thread
	// exit), or was cut by quantum expiry.
	OpSliceBegin
	OpSliceEnd
	OpSlicePreempt

	numSyncOps
)

var syncOpNames = [...]string{
	OpNone: "none", OpLock: "lock", OpUnlock: "unlock", OpWait: "wait",
	OpNotify: "notify", OpFork: "fork", OpForkChild: "fork-child",
	OpJoin: "join", OpThreadEnd: "thread-end", OpCas: "cas",
	OpXadd: "xadd", OpXchg: "xchg", OpAlloc: "alloc", OpFree: "free",
	OpSliceBegin: "slice-begin", OpSliceEnd: "slice-end",
	OpSlicePreempt: "slice-preempt",
}

func (o SyncOp) String() string {
	if int(o) < len(syncOpNames) {
		return syncOpNames[o]
	}
	return fmt.Sprintf("syncop(%d)", uint8(o))
}

// Event is one log record. Memory events use Addr, PC, and Mask; sync
// events use Addr (the SyncVar), Counter, TS, Op, and PC.
type Event struct {
	Kind    Kind
	Op      SyncOp
	TID     int32
	PC      lir.PC
	Addr    uint64
	Counter uint8  // timestamp counter id, sync events only
	TS      uint64 // timestamp within Counter (1-based), sync events only
	Mask    uint32 // sampler would-log bitmask, memory events only
}

func (e Event) String() string {
	if e.Kind.IsMem() {
		return fmt.Sprintf("t%d %s @%v addr=%#x mask=%#x", e.TID, e.Kind, e.PC, e.Addr, e.Mask)
	}
	if e.Kind.IsSched() {
		return fmt.Sprintf("t%d sched(%s) @%v slice=%d instrs=%d", e.TID, e.Op, e.PC, e.Addr, e.TS)
	}
	return fmt.Sprintf("t%d %s(%s) @%v var=%#x c%d ts=%d", e.TID, e.Kind, e.Op, e.PC, e.Addr, e.Counter, e.TS)
}
