// Package faultinject mutilates encoded trace logs for crash-tolerance
// testing: truncations (a process killed mid-write), bit flips (disk or
// transport corruption), and dropped or duplicated chunks (lost or
// replayed buffers). Every mutation returns a fresh slice and leaves the
// input intact, so one pristine log can seed an arbitrary fault corpus.
//
// The package works on raw encoded bytes and uses trace.ChunkSpans as its
// map of chunk boundaries, so it supports both LTRC1 and LTRC2 logs. All
// randomness flows through an explicit *rand.Rand: a seeded fault corpus
// is fully reproducible.
package faultinject

import (
	"math/rand"

	"literace/internal/trace"
)

// TruncateAt returns the first n bytes of data (the whole log when n is
// past the end). It models a crash between two writes when n is a chunk
// boundary, and a crash mid-write otherwise.
func TruncateAt(data []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(data) {
		n = len(data)
	}
	out := make([]byte, n)
	copy(out, data[:n])
	return out
}

// FlipBit returns a copy of data with one bit inverted. bit counts from
// the start of the log (bit = 8*byteOffset + bitIndex); out-of-range bits
// wrap.
func FlipBit(data []byte, bit int) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if len(out) == 0 {
		return out
	}
	if bit < 0 {
		bit = -bit
	}
	bit %= 8 * len(out)
	out[bit/8] ^= 1 << uint(bit%8)
	return out
}

// DropChunk returns a copy of data with the i-th chunk removed (the lost
// write of a crashed thread). It returns data unchanged when the log has
// no valid chunk map or i is out of range.
func DropChunk(data []byte, i int) []byte {
	spans, err := trace.ChunkSpans(data)
	if err != nil || i < 0 || i >= len(spans) {
		return append([]byte(nil), data...)
	}
	s := spans[i]
	out := make([]byte, 0, len(data)-(s.End-s.Start))
	out = append(out, data[:s.Start]...)
	out = append(out, data[s.End:]...)
	return out
}

// DuplicateChunk returns a copy of data with the i-th chunk repeated in
// place (a replayed buffer). It returns data unchanged when the log has no
// valid chunk map or i is out of range.
func DuplicateChunk(data []byte, i int) []byte {
	spans, err := trace.ChunkSpans(data)
	if err != nil || i < 0 || i >= len(spans) {
		return append([]byte(nil), data...)
	}
	s := spans[i]
	out := make([]byte, 0, len(data)+(s.End-s.Start))
	out = append(out, data[:s.End]...)
	out = append(out, data[s.Start:s.End]...)
	out = append(out, data[s.End:]...)
	return out
}

// Boundaries returns every crash-consistent cut point of the log: the end
// offset of each chunk, plus the magic boundary. Truncating at any of
// them leaves only whole chunks behind.
func Boundaries(data []byte) []int {
	spans, err := trace.ChunkSpans(data)
	if err != nil {
		return nil
	}
	cuts := make([]int, 0, len(spans)+1)
	if len(spans) > 0 {
		cuts = append(cuts, spans[0].Start)
	}
	for _, s := range spans {
		cuts = append(cuts, s.End)
	}
	return cuts
}

// Mutate applies one randomly chosen mutation drawn from rng: truncation
// at a random offset, a bit flip, a dropped chunk, or a duplicated chunk.
// It returns the mutated copy and a short description of what it did.
func Mutate(data []byte, rng *rand.Rand) ([]byte, string) {
	if len(data) == 0 {
		return nil, "empty"
	}
	switch rng.Intn(4) {
	case 0:
		n := rng.Intn(len(data) + 1)
		return TruncateAt(data, n), "truncate"
	case 1:
		return FlipBit(data, rng.Intn(8*len(data))), "flipbit"
	case 2:
		if spans, err := trace.ChunkSpans(data); err == nil && len(spans) > 0 {
			return DropChunk(data, rng.Intn(len(spans))), "dropchunk"
		}
		return TruncateAt(data, rng.Intn(len(data)+1)), "truncate"
	default:
		if spans, err := trace.ChunkSpans(data); err == nil && len(spans) > 0 {
			return DuplicateChunk(data, rng.Intn(len(spans))), "dupchunk"
		}
		return FlipBit(data, rng.Intn(8*len(data))), "flipbit"
	}
}
