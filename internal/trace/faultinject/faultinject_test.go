package faultinject

import (
	"bytes"
	"math/rand"
	"testing"

	"literace/internal/trace"
)

func buildLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for tid := int32(0); tid < 2; tid++ {
		tw := w.Thread(tid)
		for i := 0; i < 50; i++ {
			if err := tw.Append(trace.Event{Kind: trace.KindWrite, TID: tid, Addr: uint64(i)}); err != nil {
				t.Fatal(err)
			}
			if (i+1)%20 == 0 {
				if err := tw.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Close(trace.Meta{Module: "fi"}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMutationsPreserveInput(t *testing.T) {
	data := buildLog(t)
	orig := append([]byte(nil), data...)
	TruncateAt(data, len(data)/2)
	FlipBit(data, 100)
	DropChunk(data, 1)
	DuplicateChunk(data, 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		Mutate(data, rng)
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("a mutation modified its input")
	}
}

func TestTruncateAt(t *testing.T) {
	data := buildLog(t)
	if got := TruncateAt(data, -5); len(got) != 0 {
		t.Errorf("negative cut kept %d bytes", len(got))
	}
	if got := TruncateAt(data, len(data)+10); len(got) != len(data) {
		t.Errorf("overlong cut: %d bytes", len(got))
	}
	if got := TruncateAt(data, 7); !bytes.Equal(got, data[:7]) {
		t.Error("cut content wrong")
	}
}

func TestFlipBit(t *testing.T) {
	data := buildLog(t)
	mut := FlipBit(data, 8*10+3)
	if len(mut) != len(data) {
		t.Fatal("length changed")
	}
	diff := 0
	for i := range mut {
		if mut[i] != data[i] {
			diff++
			if mut[i]^data[i] != 1<<3 {
				t.Errorf("byte %d changed by %#x", i, mut[i]^data[i])
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes changed", diff)
	}
	if got := FlipBit(nil, 3); len(got) != 0 {
		t.Error("empty input grew")
	}
	// Out-of-range bits wrap rather than panic.
	FlipBit(data, 8*len(data)+11)
	FlipBit(data, -9)
}

func TestDropChunkCreatesSeqGap(t *testing.T) {
	data := buildLog(t)
	spans, err := trace.ChunkSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	// Index of the first thread chunk (its thread has more chunks after).
	idx := -1
	for i, s := range spans {
		if s.Tag >= 2 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no thread chunk")
	}
	mut := DropChunk(data, idx)
	if len(mut) != len(data)-(spans[idx].End-spans[idx].Start) {
		t.Fatalf("dropped chunk length: %d vs %d", len(mut), len(data))
	}
	_, rep, err := trace.Salvage(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SeqGaps != 1 || !rep.Lossy() {
		t.Errorf("drop not detected: %s", rep.Summary())
	}
	// Out-of-range index is a no-op copy.
	if !bytes.Equal(DropChunk(data, len(spans)+3), data) {
		t.Error("out-of-range drop changed data")
	}
}

func TestDuplicateChunkDetected(t *testing.T) {
	data := buildLog(t)
	spans, err := trace.ChunkSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, s := range spans {
		if s.Tag >= 2 {
			idx = i
			break
		}
	}
	mut := DuplicateChunk(data, idx)
	if len(mut) != len(data)+(spans[idx].End-spans[idx].Start) {
		t.Fatal("duplicate length wrong")
	}
	log, rep, err := trace.Salvage(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DuplicateChunks != 1 {
		t.Errorf("DuplicateChunks = %d", rep.DuplicateChunks)
	}
	orig, err := trace.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if log.NumEvents() != orig.NumEvents() {
		t.Errorf("duplicate changed event count: %d vs %d", log.NumEvents(), orig.NumEvents())
	}
}

func TestBoundaries(t *testing.T) {
	data := buildLog(t)
	cuts := Boundaries(data)
	if len(cuts) == 0 {
		t.Fatal("no boundaries")
	}
	if cuts[len(cuts)-1] != len(data) {
		t.Errorf("last boundary %d != len %d", cuts[len(cuts)-1], len(data))
	}
	for _, cut := range cuts {
		_, rep, err := trace.Salvage(bytes.NewReader(TruncateAt(data, cut)))
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if rep.Truncated || rep.BytesDropped != 0 {
			t.Errorf("boundary cut %d not crash-consistent: %s", cut, rep.Summary())
		}
	}
	if Boundaries([]byte("garbage")) != nil {
		t.Error("boundaries on garbage")
	}
}

func TestMutateNeverBreaksSalvage(t *testing.T) {
	data := buildLog(t)
	rng := rand.New(rand.NewSource(42))
	kinds := map[string]int{}
	for i := 0; i < 300; i++ {
		mut, kind := Mutate(data, rng)
		kinds[kind]++
		if _, rep, err := trace.Salvage(bytes.NewReader(mut)); err == nil {
			if rep.MagicBytes+rep.BytesOK+rep.BytesDropped != rep.TotalBytes {
				t.Fatalf("%s mutation broke byte accounting", kind)
			}
		}
	}
	for _, want := range []string{"truncate", "flipbit", "dropchunk", "dupchunk"} {
		if kinds[want] == 0 {
			t.Errorf("mutation kind %s never drawn: %v", want, kinds)
		}
	}
}
