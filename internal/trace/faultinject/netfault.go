package faultinject

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// NetFaults configures the network fault layer: a net.Conn wrapper that
// mutilates a producer's transport the way hostile infrastructure does.
// The zero value injects nothing. All fields compose; all randomness
// flows through the explicit seed, so a faulty run is reproducible.
type NetFaults struct {
	// WriteDelay sleeps before every write — a slow-loris producer that
	// keeps the connection alive while trickling bytes.
	WriteDelay time.Duration
	// MaxWrite chops each write into pieces of at most this many bytes
	// (each sent separately), so the receiver sees fragmented, delayed
	// delivery instead of whole frames. 0 disables.
	MaxWrite int
	// DropAfter kills the connection after this many bytes have been
	// written (the write that crosses the line fails and the underlying
	// conn closes — a producer dying mid-frame). 0 disables.
	DropAfter int64
	// FlipBitEvery XORs one pseudo-random bit into the stream every N
	// bytes written — transport corruption the protocol's CRC and the
	// salvage decoder must absorb. 0 disables.
	FlipBitEvery int64
	// Seed drives the bit-flip positions.
	Seed int64
}

// ErrInjectedDrop is the error a FaultyConn write fails with when
// NetFaults.DropAfter cuts the connection.
var ErrInjectedDrop = fmt.Errorf("faultinject: injected connection drop")

// FaultyConn wraps a net.Conn with NetFaults applied to its write side.
// Reads pass through untouched: the fault model is a misbehaving
// producer, and the producer's view of server replies stays honest.
type FaultyConn struct {
	net.Conn
	cfg NetFaults

	mu      sync.Mutex
	rng     *rand.Rand
	written int64
	dropped bool
}

// WrapConn applies cfg to conn. A zero cfg returns conn unchanged.
func (cfg NetFaults) WrapConn(conn net.Conn) net.Conn {
	if cfg == (NetFaults{}) {
		return conn
	}
	return &FaultyConn{Conn: conn, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Write applies the configured faults, piece by piece. The io.Writer
// contract holds: a short count is always paired with an error.
func (c *FaultyConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for len(b) > 0 {
		if c.dropped {
			return total, ErrInjectedDrop
		}
		if c.cfg.DropAfter > 0 && c.written >= c.cfg.DropAfter {
			c.dropped = true
			_ = c.Conn.Close()
			return total, ErrInjectedDrop
		}
		piece := b
		if c.cfg.MaxWrite > 0 && len(piece) > c.cfg.MaxWrite {
			piece = piece[:c.cfg.MaxWrite]
		}
		// Never write past the drop line: the crossing write dies.
		if c.cfg.DropAfter > 0 && c.written+int64(len(piece)) > c.cfg.DropAfter {
			piece = piece[:c.cfg.DropAfter-c.written]
			if len(piece) == 0 {
				continue // next iteration drops
			}
		}
		if c.cfg.WriteDelay > 0 {
			time.Sleep(c.cfg.WriteDelay)
		}
		out := piece
		if n := c.cfg.FlipBitEvery; n > 0 {
			// Corrupt a copy; the caller's buffer stays intact.
			if (c.written%n)+int64(len(piece)) >= n {
				cp := append([]byte(nil), piece...)
				cp[c.rng.Intn(len(cp))] ^= 1 << uint(c.rng.Intn(8))
				out = cp
			}
		}
		n, err := c.Conn.Write(out)
		c.written += int64(n)
		total += n
		if err != nil {
			return total, err
		}
		b = b[n:]
	}
	return total, nil
}
