package trace

import (
	"bytes"
	"testing"
)

// FuzzReadAll checks the log decoder never panics on arbitrary bytes and
// never accepts input that decodes to out-of-range kinds or ops.
func FuzzReadAll(f *testing.F) {
	// Seed with a real log.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	tw := w.Thread(1)
	tw.Append(Event{Kind: KindWrite, TID: 1, Addr: 7, Mask: 3})
	tw.Append(Event{Kind: KindAcquire, Op: OpLock, TID: 1, Addr: 9, Counter: 4, TS: 1})
	if err := w.Close(Meta{Module: "seed"}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte("LTRC1\n\xff\xff\xff\xff"))
	// Truncations of the valid log.
	for i := 0; i < len(valid); i += 3 {
		f.Add(valid[:i])
	}
	// Single-byte corruptions.
	for i := 0; i < len(valid); i++ {
		c := append([]byte(nil), valid...)
		c[i] ^= 0x55
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, evs := range log.Threads {
			for _, e := range evs {
				if e.Kind >= numKinds {
					t.Fatalf("decoded invalid kind %d", e.Kind)
				}
				if e.Op >= numSyncOps {
					t.Fatalf("decoded invalid op %d", e.Op)
				}
			}
		}
	})
}
