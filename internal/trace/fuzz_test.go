package trace

import (
	"bytes"
	"testing"
)

// FuzzReadAll checks the log decoder never panics on arbitrary bytes and
// never accepts input that decodes to out-of-range kinds or ops.
func FuzzReadAll(f *testing.F) {
	// Seed with a real log.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	tw := w.Thread(1)
	tw.Append(Event{Kind: KindWrite, TID: 1, Addr: 7, Mask: 3})
	tw.Append(Event{Kind: KindAcquire, Op: OpLock, TID: 1, Addr: 9, Counter: 4, TS: 1})
	if err := w.Close(Meta{Module: "seed"}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte("LTRC1\n\xff\xff\xff\xff"))
	// Truncations of the valid log.
	for i := 0; i < len(valid); i += 3 {
		f.Add(valid[:i])
	}
	// Single-byte corruptions.
	for i := 0; i < len(valid); i++ {
		c := append([]byte(nil), valid...)
		c[i] ^= 0x55
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, evs := range log.Threads {
			for _, e := range evs {
				if e.Kind >= numKinds {
					t.Fatalf("decoded invalid kind %d", e.Kind)
				}
				if e.Op >= numSyncOps {
					t.Fatalf("decoded invalid op %d", e.Op)
				}
			}
		}
	})
}

// FuzzSalvage checks the salvage decoder never panics and keeps its
// documented guarantees on arbitrary bytes: exact byte accounting, events
// only with in-range kinds and ops, and strict-decodable logs salvaged
// without loss.
func FuzzSalvage(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	for tid := int32(0); tid < 3; tid++ {
		tw := w.Thread(tid)
		for i := 0; i < 40; i++ {
			tw.Append(Event{Kind: KindWrite, TID: tid, Addr: uint64(i), Mask: 1})
			if i%13 == 0 {
				tw.Append(Event{Kind: KindRelease, Op: OpUnlock, TID: tid, Addr: 9, Counter: 4, TS: uint64(i/13 + 1)})
			}
		}
		tw.Flush()
	}
	if err := w.Close(Meta{Module: "seed"}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte(magicV1))
	for i := 0; i < len(valid); i += 5 {
		f.Add(valid[:i])
		c := append([]byte(nil), valid...)
		c[i] ^= 0x55
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		log, rep, err := Salvage(bytes.NewReader(data))
		if err != nil {
			return // not a LiteRace log at all
		}
		if rep.MagicBytes+rep.BytesOK+rep.BytesDropped != rep.TotalBytes {
			t.Fatalf("byte accounting: magic %d + ok %d + dropped %d != total %d",
				rep.MagicBytes, rep.BytesOK, rep.BytesDropped, rep.TotalBytes)
		}
		n := 0
		for _, evs := range log.Threads {
			n += len(evs)
			for _, e := range evs {
				if e.Kind >= numKinds {
					t.Fatalf("salvaged invalid kind %d", e.Kind)
				}
				if e.Op >= numSyncOps {
					t.Fatalf("salvaged invalid op %d", e.Op)
				}
			}
		}
		if n != rep.EventsSalvaged {
			t.Fatalf("EventsSalvaged = %d, log holds %d", rep.EventsSalvaged, n)
		}
		// Anything strict decoding accepts, salvage must recover in full.
		if strict, serr := ReadAll(bytes.NewReader(data)); serr == nil {
			if rep.Lossy() {
				t.Fatalf("strict-valid log reported lossy: %s", rep.Summary())
			}
			if strict.NumEvents() != n {
				t.Fatalf("salvage got %d events, strict decode %d", n, strict.NumEvents())
			}
		}
	})
}
