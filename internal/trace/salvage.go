package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"literace/internal/obs"
)

// ThreadLoss records what salvage lost for one thread.
type ThreadLoss struct {
	// DroppedChunks counts chunks attributed to the thread that were
	// skipped wholesale (CRC or header failure after the tag decoded).
	DroppedChunks int `json:"dropped_chunks"`
	// SeqGaps counts missing sequence numbers: chunks the writer emitted
	// (or would have) that never made it into the decoded stream.
	SeqGaps uint64 `json:"seq_gaps"`
	// DroppedBytes counts payload bytes lost in dropped or partially
	// decoded chunks attributed to the thread.
	DroppedBytes int64 `json:"dropped_bytes"`
	// EventsSalvaged counts events recovered for the thread.
	EventsSalvaged int `json:"events_salvaged"`
}

// SalvageReport describes what Salvage recovered and what it gave up on.
// The byte accounting is exact: MagicBytes + BytesOK + BytesDropped ==
// TotalBytes.
type SalvageReport struct {
	Format     string `json:"format"`      // "LTRC2" or "LTRC1"
	TotalBytes int64  `json:"total_bytes"` // input size
	MagicBytes int64  `json:"magic_bytes"` // leading magic consumed
	BytesOK    int64  `json:"bytes_ok"`    // bytes inside accepted chunks
	// BytesDropped counts every byte not inside an accepted chunk:
	// corrupt chunks, resync scans, duplicate chunks, and the truncated
	// tail.
	BytesDropped int64 `json:"bytes_dropped"`

	ChunksOK        int `json:"chunks_ok"`
	ChunksDropped   int `json:"chunks_dropped"`
	CRCFailures     int `json:"crc_failures"`
	DuplicateChunks int `json:"duplicate_chunks"`
	// SeqGaps totals the per-thread sequence gaps: chunks the writer
	// emitted that are absent from the input (lost writes; the bytes were
	// never seen, so BytesDropped cannot account for them).
	SeqGaps uint64 `json:"seq_gaps"`

	EventsSalvaged int `json:"events_salvaged"`

	// Truncated is set when the input ends mid-chunk (the signature of a
	// killed process); TruncatedAt is the offset where clean decoding
	// stopped.
	Truncated   bool  `json:"truncated"`
	TruncatedAt int64 `json:"truncated_at,omitempty"`

	// MetaSource says where Log.Meta came from: "trailer" (complete log),
	// "checkpoint" (crash recovery from the last periodic snapshot), or
	// "none".
	MetaSource   string `json:"meta_source"`
	CheckpointAt int64  `json:"checkpoint_at,omitempty"` // offset of the checkpoint used

	// Threads carries per-thread loss detail, keyed by tid.
	Threads map[int32]*ThreadLoss `json:"threads,omitempty"`
}

// Lossy reports whether the log lost anything: a lossless salvage decodes
// exactly what strict ReadAll would accept.
func (r *SalvageReport) Lossy() bool {
	return r.BytesDropped > 0 || r.ChunksDropped > 0 || r.CRCFailures > 0 ||
		r.SeqGaps > 0 || r.Truncated || r.MetaSource != "trailer"
}

// Summary renders the report as one diagnostic line.
func (r *SalvageReport) Summary() string {
	state := "clean"
	if r.Lossy() {
		state = "lossy"
	}
	s := fmt.Sprintf("%s %s: %d/%d chunks ok, %d events salvaged, %d bytes dropped, %d crc failures, meta from %s",
		r.Format, state, r.ChunksOK, r.ChunksOK+r.ChunksDropped, r.EventsSalvaged,
		r.BytesDropped, r.CRCFailures, r.MetaSource)
	if r.SeqGaps > 0 {
		s += fmt.Sprintf(", %d lost chunks (seq gaps)", r.SeqGaps)
	}
	if r.Truncated {
		s += fmt.Sprintf(", truncated at byte %d", r.TruncatedAt)
	}
	return s
}

func (r *SalvageReport) thread(tid int32) *ThreadLoss {
	if r.Threads == nil {
		r.Threads = make(map[int32]*ThreadLoss)
	}
	tl := r.Threads[tid]
	if tl == nil {
		tl = &ThreadLoss{}
		r.Threads[tid] = tl
	}
	return tl
}

// Salvage decodes as much of a damaged log as possible. Unlike ReadAll it
// never fails on truncation or corruption: bad chunks are dropped, the
// decoder resynchronizes on the next chunk marker, duplicate chunks are
// discarded, and a missing trailer falls back to the last valid
// checkpoint. The returned Log has Degraded set for every thread whose
// stream lost a chunk, so degraded-mode replay can tell which orderings
// are suspect. The error is non-nil only when the input cannot be read
// or is not a LiteRace log at all.
func Salvage(r io.Reader) (*Log, *SalvageReport, error) {
	return SalvageObs(r, nil)
}

// SalvageObs is Salvage with telemetry: when reg is non-nil it counts
// trace.crc_failures and trace.salvaged_chunks.
func SalvageObs(r io.Reader, reg *obs.Registry) (*Log, *SalvageReport, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: salvage: %w", err)
	}
	var log *Log
	var rep *SalvageReport
	switch {
	case bytes.HasPrefix(data, []byte(magic)):
		log, rep = salvageV2(data)
	case bytes.HasPrefix(data, []byte(magicV1)):
		log, rep = salvageV1(data)
	default:
		return nil, nil, fmt.Errorf("trace: salvage: not a LiteRace log (bad magic)")
	}
	if reg != nil {
		reg.Counter("trace.crc_failures").Add(uint64(rep.CRCFailures))
		reg.Counter("trace.salvaged_chunks").Add(uint64(rep.ChunksOK))
	}
	return log, rep, nil
}

// errTruncatedChunk distinguishes running off the end of the input from
// in-place corruption.
var errTruncatedChunk = errors.New("trace: chunk extends past end of input")

// parseChunkV2 parses the LTRC2 chunk whose marker starts at data[off],
// returning the tag, payload, and the offset just past the CRC. crcOK
// distinguishes a well-framed chunk with a bad checksum from framing
// damage.
func parseChunkV2(data []byte, off int) (tag uint64, payload []byte, end int, crcOK bool, err error) {
	p := off + 4 // past the marker
	if p > len(data) {
		return 0, nil, 0, false, errTruncatedChunk
	}
	tag, n := binary.Uvarint(data[p:])
	if n <= 0 {
		if isTruncatedVarint(data[p:]) {
			return 0, nil, 0, false, errTruncatedChunk
		}
		return 0, nil, 0, false, errors.New("trace: bad chunk tag varint")
	}
	p += n
	size, n := binary.Uvarint(data[p:])
	if n <= 0 {
		if isTruncatedVarint(data[p:]) {
			return 0, nil, 0, false, errTruncatedChunk
		}
		return 0, nil, 0, false, errors.New("trace: bad chunk size varint")
	}
	p += n
	if size > maxChunkLen {
		return 0, nil, 0, false, fmt.Errorf("trace: chunk length %d exceeds limit %d", size, maxChunkLen)
	}
	if uint64(len(data)-p) < size+4 {
		return tag, nil, 0, false, errTruncatedChunk
	}
	payload = data[p : p+int(size)]
	p += int(size)
	got := binary.LittleEndian.Uint32(data[p : p+4])
	end = p + 4
	if got != chunkCRC(tag, payload) {
		return tag, payload, end, false, errors.New("trace: chunk crc mismatch")
	}
	return tag, payload, end, true, nil
}

// isTruncatedVarint reports whether b is a varint prefix cut short by the
// end of input (every byte has the continuation bit and fewer than the
// maximum length are present), as opposed to an overlong encoding.
func isTruncatedVarint(b []byte) bool {
	if len(b) >= binary.MaxVarintLen64 {
		return false
	}
	for _, c := range b {
		if c < 0x80 {
			return false
		}
	}
	return true
}

func salvageV2(data []byte) (*Log, *SalvageReport) {
	rep := &SalvageReport{
		Format:     "LTRC2",
		TotalBytes: int64(len(data)),
		MagicBytes: int64(len(magic)),
		MetaSource: "none",
	}
	log := &Log{Threads: make(map[int32][]Event)}
	lastSeq := make(map[int32]uint64)
	sawMeta := false
	var ckpt *Meta
	ckptAt := int64(-1)

	markDegraded := func(tid int32) {
		if log.Degraded == nil {
			log.Degraded = make(map[int32]int)
		}
		if _, ok := log.Degraded[tid]; !ok {
			log.Degraded[tid] = len(log.Threads[tid])
		}
	}
	// dropTo accounts for the skipped region [from, to) and remembers the
	// earliest damage point.
	dropTo := func(from, to int) {
		if to > from {
			rep.BytesDropped += int64(to - from)
		}
	}

	off := len(magic)
	for off < len(data) {
		// Resynchronize: find the next marker at or after off.
		idx := bytes.Index(data[off:], chunkMarker[:])
		if idx < 0 {
			// No further chunk can start; the tail is unreadable.
			rep.Truncated = true
			if rep.TruncatedAt == 0 {
				rep.TruncatedAt = int64(off)
			}
			dropTo(off, len(data))
			break
		}
		if idx > 0 {
			dropTo(off, off+idx)
			off += idx
		}
		tag, payload, end, crcOK, err := parseChunkV2(data, off)
		if err != nil {
			if errors.Is(err, errTruncatedChunk) {
				// The chunk runs off the end of the input — but a bit flip
				// in a length field can fake that, so keep scanning for a
				// later marker before concluding the log just ends here.
				if next := bytes.Index(data[off+1:], chunkMarker[:]); next >= 0 {
					rep.ChunksDropped++
					if tag >= tagThreadBase {
						tl := rep.thread(int32(uint32(tag - tagThreadBase)))
						tl.DroppedChunks++
						markDegraded(int32(uint32(tag - tagThreadBase)))
					}
					dropTo(off, off+1+next)
					off += 1 + next
					continue
				}
				rep.Truncated = true
				if rep.TruncatedAt == 0 {
					rep.TruncatedAt = int64(off)
				}
				dropTo(off, len(data))
				break
			}
			// In-place corruption: drop the chunk (or the bytes that
			// pretended to be one) and resync on the next marker. Never
			// trust the corrupt frame's own length — a flipped bit there
			// could leap over good chunks.
			rep.ChunksDropped++
			if !crcOK && end > off {
				rep.CRCFailures++
			}
			if tag >= tagThreadBase {
				tid := int32(uint32(tag - tagThreadBase))
				tl := rep.thread(tid)
				tl.DroppedChunks++
				tl.DroppedBytes += int64(len(payload))
				markDegraded(tid)
			}
			skipTo := len(data)
			if next := bytes.Index(data[off+1:], chunkMarker[:]); next >= 0 {
				skipTo = off + 1 + next
			}
			dropTo(off, skipTo)
			off = skipTo
			continue
		}

		// A well-formed chunk.
		switch {
		case tag == tagMeta:
			if jerr := json.Unmarshal(payload, &log.Meta); jerr != nil {
				rep.ChunksDropped++
				dropTo(off, end)
			} else {
				sawMeta = true
				rep.ChunksOK++
				rep.BytesOK += int64(end - off)
			}
		case tag == tagCheckpoint:
			var m Meta
			if jerr := json.Unmarshal(payload, &m); jerr != nil {
				rep.ChunksDropped++
				dropTo(off, end)
			} else {
				ckpt, ckptAt = &m, int64(off)
				rep.ChunksOK++
				rep.BytesOK += int64(end - off)
			}
		default:
			tid := int32(uint32(tag - tagThreadBase))
			tl := rep.thread(tid)
			seq, rest, serr := takeUvarint(payload)
			if serr != nil {
				rep.ChunksDropped++
				tl.DroppedChunks++
				tl.DroppedBytes += int64(len(payload))
				markDegraded(tid)
				dropTo(off, end)
				off = end
				continue
			}
			if seq <= lastSeq[tid] {
				// Duplicate (or replayed) chunk: its content is already in
				// the stream; keeping it would corrupt program order.
				rep.DuplicateChunks++
				dropTo(off, end)
				off = end
				continue
			}
			if gap := seq - lastSeq[tid] - 1; gap > 0 {
				tl.SeqGaps += gap
				rep.SeqGaps += gap
				markDegraded(tid)
			}
			lastSeq[tid] = seq
			evs, n, derr := decodeEventsPrefix(tid, rest)
			tl.EventsSalvaged += len(evs)
			rep.EventsSalvaged += len(evs)
			log.Threads[tid] = append(log.Threads[tid], evs...)
			if len(evs) > 0 {
				log.ChunkOrder = append(log.ChunkOrder, ChunkRef{TID: tid, N: len(evs)})
			}
			if derr != nil {
				// CRC-valid but undecodable tail (writer bug or a CRC
				// collision): keep the prefix, mark the thread suspect.
				tl.DroppedBytes += int64(len(rest) - n)
				markDegraded(tid)
				rep.BytesDropped += int64(len(rest) - n)
				rep.BytesOK += int64(end-off) - int64(len(rest)-n)
			} else {
				rep.BytesOK += int64(end - off)
			}
			rep.ChunksOK++
		}
		off = end
	}

	switch {
	case sawMeta:
		rep.MetaSource = "trailer"
	case ckpt != nil:
		log.Meta = *ckpt
		rep.MetaSource = "checkpoint"
		rep.CheckpointAt = ckptAt
	}
	return log, rep
}

// salvageV1 decodes a legacy LTRC1 log leniently: the format has no
// markers or CRCs, so there is no resynchronization — decoding stops at
// the first damage and everything before it is kept.
func salvageV1(data []byte) (*Log, *SalvageReport) {
	rep := &SalvageReport{
		Format:     "LTRC1",
		TotalBytes: int64(len(data)),
		MagicBytes: int64(len(magicV1)),
		MetaSource: "none",
	}
	log := &Log{Threads: make(map[int32][]Event)}
	off := len(magicV1)
	sawMeta := false
	truncate := func(at int) {
		rep.Truncated = true
		rep.TruncatedAt = int64(at)
		rep.BytesDropped += int64(len(data) - at)
	}
	for off < len(data) {
		start := off
		tag, n := binary.Uvarint(data[off:])
		if n <= 0 {
			truncate(start)
			break
		}
		off += n
		size, n := binary.Uvarint(data[off:])
		if n <= 0 {
			truncate(start)
			break
		}
		off += n
		if size > uint64(len(data)-off) {
			truncate(start)
			break
		}
		payload := data[off : off+int(size)]
		off += int(size)
		if tag == 0 {
			if err := json.Unmarshal(payload, &log.Meta); err != nil {
				rep.ChunksDropped++
				rep.BytesDropped += int64(off - start)
				continue
			}
			sawMeta = true
			rep.ChunksOK++
			rep.BytesOK += int64(off - start)
			continue
		}
		tid := int32(uint32(tag - 1))
		tl := rep.thread(tid)
		evs, consumed, derr := decodeEventsPrefix(tid, payload)
		tl.EventsSalvaged += len(evs)
		rep.EventsSalvaged += len(evs)
		log.Threads[tid] = append(log.Threads[tid], evs...)
		if len(evs) > 0 {
			log.ChunkOrder = append(log.ChunkOrder, ChunkRef{TID: tid, N: len(evs)})
		}
		if derr != nil {
			// Without CRCs a bad event byte may mean anything; keep the
			// prefix and stop trusting the remainder of the stream.
			tl.DroppedBytes += int64(len(payload) - consumed)
			if log.Degraded == nil {
				log.Degraded = make(map[int32]int)
			}
			if _, ok := log.Degraded[tid]; !ok {
				log.Degraded[tid] = len(log.Threads[tid])
			}
			rep.BytesOK += int64(off-start) - int64(len(payload)-consumed)
			rep.BytesDropped += int64(len(payload) - consumed)
			rep.Truncated = true
			rep.TruncatedAt = int64(off)
			rep.BytesDropped += int64(len(data) - off)
			break
		}
		rep.ChunksOK++
		rep.BytesOK += int64(off - start)
	}
	if sawMeta {
		rep.MetaSource = "trailer"
	}
	return log, rep
}

// ChunkSpan locates one chunk inside an encoded log.
type ChunkSpan struct {
	Start, End int    // byte offsets: [Start, End)
	Tag        uint64 // raw chunk tag
}

// IsCheckpoint reports whether an LTRC2 span is a periodic metadata
// checkpoint chunk. (LTRC1 logs have no checkpoints, and their tag
// namespace differs; callers must check the log format first.)
func (c ChunkSpan) IsCheckpoint() bool { return c.Tag == tagCheckpoint }

// IsMeta reports whether an LTRC2 span is the metadata trailer.
func (c ChunkSpan) IsMeta() bool { return c.Tag == tagMeta }

// IsLTRC2 reports whether data begins with the current LTRC2 magic, i.e.
// whether ChunkSpans tags follow the LTRC2 namespace.
func IsLTRC2(data []byte) bool { return bytes.HasPrefix(data, []byte(magic)) }

// ChunkSpans enumerates the chunks of a structurally valid encoded log
// (either format). It is the fault-injection harness's map of where it
// may cut, drop, or duplicate.
func ChunkSpans(data []byte) ([]ChunkSpan, error) {
	switch {
	case bytes.HasPrefix(data, []byte(magic)):
		var spans []ChunkSpan
		off := len(magic)
		for off < len(data) {
			if !bytes.HasPrefix(data[off:], chunkMarker[:]) {
				return nil, fmt.Errorf("trace: no chunk marker at offset %d", off)
			}
			tag, _, end, _, err := parseChunkV2(data, off)
			if err != nil {
				return nil, fmt.Errorf("trace: chunk at offset %d: %w", off, err)
			}
			spans = append(spans, ChunkSpan{Start: off, End: end, Tag: tag})
			off = end
		}
		return spans, nil
	case bytes.HasPrefix(data, []byte(magicV1)):
		var spans []ChunkSpan
		off := len(magicV1)
		for off < len(data) {
			start := off
			tag, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return nil, fmt.Errorf("trace: bad chunk tag at offset %d", off)
			}
			off += n
			size, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return nil, fmt.Errorf("trace: bad chunk size at offset %d", off)
			}
			off += n
			if size > uint64(len(data)-off) {
				return nil, fmt.Errorf("trace: chunk at offset %d extends past end", start)
			}
			off += int(size)
			spans = append(spans, ChunkSpan{Start: start, End: off, Tag: tag})
		}
		return spans, nil
	}
	return nil, errors.New("trace: bad magic")
}
