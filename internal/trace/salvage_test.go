package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// buildLog writes a multi-thread, multi-chunk log and returns the encoded
// bytes plus the per-thread event streams it contains.
func buildLog(t *testing.T, seed int64, nThreads, perThread, flushEvery int) ([]byte, map[int32][]Event) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32][]Event{}
	for tid := int32(0); tid < int32(nThreads); tid++ {
		tw := w.Thread(tid)
		for i := 0; i < perThread; i++ {
			e := randomEvent(r, tid)
			want[tid] = append(want[tid], e)
			if err := tw.Append(e); err != nil {
				t.Fatal(err)
			}
			if flushEvery > 0 && (i+1)%flushEvery == 0 {
				if err := tw.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Close(Meta{Module: "salvage-test", Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

// checkRecon asserts the report's documented byte-accounting invariant.
func checkRecon(t *testing.T, rep *SalvageReport) {
	t.Helper()
	if rep.MagicBytes+rep.BytesOK+rep.BytesDropped != rep.TotalBytes {
		t.Errorf("byte accounting broken: magic %d + ok %d + dropped %d != total %d",
			rep.MagicBytes, rep.BytesOK, rep.BytesDropped, rep.TotalBytes)
	}
}

func TestSalvagePristineMatchesReadAll(t *testing.T) {
	data, want := buildLog(t, 1, 3, 200, 64)
	log, rep, err := Salvage(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	checkRecon(t, rep)
	if rep.Lossy() {
		t.Errorf("pristine log reported lossy: %s", rep.Summary())
	}
	if rep.MetaSource != "trailer" || log.Meta.Module != "salvage-test" {
		t.Errorf("meta source %q module %q", rep.MetaSource, log.Meta.Module)
	}
	if log.Degraded != nil {
		t.Errorf("pristine log marked degraded: %v", log.Degraded)
	}
	for tid, evs := range want {
		if !reflect.DeepEqual(log.Threads[tid], evs) {
			t.Errorf("thread %d: salvage decoded %d events, want %d", tid, len(log.Threads[tid]), len(evs))
		}
	}
	strict, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if strict.NumEvents() != rep.EventsSalvaged {
		t.Errorf("salvage found %d events, ReadAll %d", rep.EventsSalvaged, strict.NumEvents())
	}
}

// isPrefix reports whether got is a prefix of want.
func isPrefix(got, want []Event) bool {
	if len(got) > len(want) {
		return false
	}
	return len(got) == 0 || reflect.DeepEqual(got, want[:len(got)])
}

func TestSalvageTruncationAtEveryChunkBoundary(t *testing.T) {
	data, want := buildLog(t, 2, 2, 300, 50)
	spans, err := ChunkSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{len(magic)}
	for _, s := range spans {
		cuts = append(cuts, s.End)
	}
	for _, cut := range cuts {
		log, rep, err := Salvage(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		checkRecon(t, rep)
		if rep.Truncated {
			t.Errorf("cut at chunk boundary %d reported mid-chunk truncation", cut)
		}
		if rep.BytesDropped != 0 {
			t.Errorf("cut at boundary %d dropped %d bytes", cut, rep.BytesDropped)
		}
		for tid, evs := range log.Threads {
			if !isPrefix(evs, want[tid]) {
				t.Errorf("cut at %d: thread %d events are not a prefix", cut, tid)
			}
		}
		if cut < len(data) && !rep.Lossy() {
			t.Errorf("cut at %d lost the trailer but reported clean", cut)
		}
	}
}

func TestSalvageTruncationAtRandomOffsets(t *testing.T) {
	data, want := buildLog(t, 3, 2, 300, 50)
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		cut := len(magic) + r.Intn(len(data)-len(magic)+1)
		log, rep, err := Salvage(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		checkRecon(t, rep)
		for tid, evs := range log.Threads {
			if !isPrefix(evs, want[tid]) {
				t.Errorf("cut at %d: thread %d events are not a prefix", cut, tid)
			}
		}
	}
}

func TestSalvageBitFlips(t *testing.T) {
	data, want := buildLog(t, 4, 2, 120, 40)
	full := 0
	for _, evs := range want {
		full += len(evs)
	}
	for off := len(magic); off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		log, rep, err := Salvage(bytes.NewReader(mut))
		if err != nil {
			t.Fatalf("flip at %d: %v", off, err)
		}
		checkRecon(t, rep)
		if rep.EventsSalvaged > full {
			t.Errorf("flip at %d: salvaged %d events from a log of %d", off, rep.EventsSalvaged, full)
		}
		// One flipped bit damages at most one chunk; every other chunk's
		// events must survive.
		if log.NumEvents() == 0 && full > 0 && rep.ChunksOK == 0 {
			t.Errorf("flip at %d destroyed every chunk", off)
		}
	}
}

func TestSalvageDroppedChunkMarksDegraded(t *testing.T) {
	data, want := buildLog(t, 5, 1, 100, 25) // thread 0: 4 chunks of 25 events
	spans, err := ChunkSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the second thread chunk of thread 0.
	var th []ChunkSpan
	for _, s := range spans {
		if s.Tag == tagThreadBase {
			th = append(th, s)
		}
	}
	if len(th) < 3 {
		t.Fatalf("expected >=3 thread chunks, got %d", len(th))
	}
	cutStart, cutEnd := th[1].Start, th[1].End
	mut := append([]byte(nil), data[:cutStart]...)
	mut = append(mut, data[cutEnd:]...)

	log, rep, err := Salvage(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	checkRecon(t, rep)
	tl := rep.Threads[0]
	if tl == nil || tl.SeqGaps != 1 {
		t.Fatalf("seq gap not detected: %+v", rep.Threads)
	}
	if !rep.Lossy() {
		t.Error("dropped chunk log reported clean")
	}
	idx, ok := log.Degraded[0]
	if !ok || idx != 25 {
		t.Errorf("Degraded[0] = %d, %v; want 25 (events before the gap)", idx, ok)
	}
	// Events after the gap are still decoded — the replay decides how far
	// to trust them.
	if got, wantN := len(log.Threads[0]), len(want[0])-25; got != wantN {
		t.Errorf("decoded %d events, want %d", got, wantN)
	}
	if !reflect.DeepEqual(log.Threads[0][:25], want[0][:25]) {
		t.Error("pre-gap events corrupted")
	}
}

func TestSalvageDuplicateChunkDropped(t *testing.T) {
	data, want := buildLog(t, 6, 1, 60, 20)
	spans, err := ChunkSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	var first *ChunkSpan
	for i := range spans {
		if spans[i].Tag == tagThreadBase {
			first = &spans[i]
			break
		}
	}
	if first == nil {
		t.Fatal("no thread chunk")
	}
	mut := append([]byte(nil), data[:first.End]...)
	mut = append(mut, data[first.Start:first.End]...) // replay the chunk
	mut = append(mut, data[first.End:]...)

	log, rep, err := Salvage(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	checkRecon(t, rep)
	if rep.DuplicateChunks != 1 {
		t.Errorf("DuplicateChunks = %d", rep.DuplicateChunks)
	}
	if !reflect.DeepEqual(log.Threads[0], want[0]) {
		t.Errorf("duplicate chunk corrupted the stream: %d events, want %d",
			len(log.Threads[0]), len(want[0]))
	}
	if log.Degraded != nil {
		t.Errorf("duplicate marked degraded: %v", log.Degraded)
	}
}

func TestSalvageCheckpointFallback(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.SetMetaSource(func() Meta { return Meta{Module: "ckpt-module", Seed: 42} })
	tw := w.Thread(0)
	// Write enough to cross checkpointInterval at least once.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3*checkpointInterval/16; i++ {
		if err := tw.Append(randomEvent(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(Meta{Module: "trailer-module"}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	spans, err := ChunkSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	var hasCkpt bool
	trailerStart := -1
	for _, s := range spans {
		switch s.Tag {
		case tagCheckpoint:
			hasCkpt = true
		case tagMeta:
			trailerStart = s.Start
		}
	}
	if !hasCkpt {
		t.Fatal("no checkpoint emitted; grow the log")
	}
	if trailerStart < 0 {
		t.Fatal("no trailer")
	}

	// Crash before the trailer: meta must come from the checkpoint.
	log, rep, err := Salvage(bytes.NewReader(data[:trailerStart]))
	if err != nil {
		t.Fatal(err)
	}
	checkRecon(t, rep)
	if rep.MetaSource != "checkpoint" || rep.CheckpointAt == 0 {
		t.Fatalf("meta source %q at %d", rep.MetaSource, rep.CheckpointAt)
	}
	if log.Meta.Module != "ckpt-module" || log.Meta.Seed != 42 {
		t.Errorf("checkpoint meta: %+v", log.Meta)
	}
	if log.Meta.LoggedBytes == 0 {
		t.Error("checkpoint did not record LoggedBytes")
	}
	if !rep.Lossy() {
		t.Error("trailer-less log reported clean")
	}

	// With the full log, the trailer wins.
	_, rep2, err := Salvage(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.MetaSource != "trailer" {
		t.Errorf("full log meta source %q", rep2.MetaSource)
	}
}

// encodeV1 builds a legacy LTRC1 log by hand (the writer only emits LTRC2).
func encodeV1(t *testing.T, metaJSON []byte, chunks map[int32][][]Event) []byte {
	t.Helper()
	out := []byte(magicV1)
	appendChunk := func(tag uint64, payload []byte) {
		out = binary.AppendUvarint(out, tag)
		out = binary.AppendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
	}
	for tid, batches := range chunks {
		for _, evs := range batches {
			var payload []byte
			for _, e := range evs {
				payload = appendEvent(payload, e)
			}
			appendChunk(uint64(uint32(tid))+1, payload)
		}
	}
	if metaJSON != nil {
		appendChunk(0, metaJSON)
	}
	return out
}

func TestSalvageV1(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	evs := make([]Event, 50)
	for i := range evs {
		evs[i] = randomEvent(r, 1)
	}
	metaJSON, _ := json.Marshal(Meta{Module: "v1"})
	data := encodeV1(t, metaJSON, map[int32][][]Event{1: {evs[:30], evs[30:]}})

	log, rep, err := Salvage(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	checkRecon(t, rep)
	if rep.Format != "LTRC1" || rep.Lossy() {
		t.Errorf("v1 salvage: %s", rep.Summary())
	}
	if !reflect.DeepEqual(log.Threads[1], evs) {
		t.Errorf("v1 decoded %d events, want %d", len(log.Threads[1]), len(evs))
	}
	if log.Meta.Module != "v1" {
		t.Errorf("v1 meta: %+v", log.Meta)
	}

	// Truncations keep a per-thread prefix and never error.
	for cut := len(magicV1); cut < len(data); cut += 7 {
		log, rep, err := Salvage(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("v1 cut at %d: %v", cut, err)
		}
		checkRecon(t, rep)
		if !isPrefix(log.Threads[1], evs) {
			t.Errorf("v1 cut at %d: not a prefix", cut)
		}
	}
}

func TestSalvageObsTelemetry(t *testing.T) {
	data, _ := buildLog(t, 9, 1, 80, 20)
	spans, err := ChunkSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one thread chunk's payload so its CRC fails.
	mut := append([]byte(nil), data...)
	for _, s := range spans {
		if s.Tag == tagThreadBase {
			mut[s.End-5] ^= 0x01 // last payload byte
			break
		}
	}
	reg := obsNew()
	_, rep, err := SalvageObs(bytes.NewReader(mut), reg)
	if err != nil {
		t.Fatal(err)
	}
	checkRecon(t, rep)
	if rep.CRCFailures == 0 {
		t.Fatalf("corruption not detected: %s", rep.Summary())
	}
	snap := reg.Snapshot()
	if snap.Counters["trace.crc_failures"] != uint64(rep.CRCFailures) {
		t.Errorf("trace.crc_failures = %d, report says %d",
			snap.Counters["trace.crc_failures"], rep.CRCFailures)
	}
	if snap.Counters["trace.salvaged_chunks"] != uint64(rep.ChunksOK) {
		t.Errorf("trace.salvaged_chunks = %d, report says %d",
			snap.Counters["trace.salvaged_chunks"], rep.ChunksOK)
	}
}

func TestSalvageBadMagic(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("NOPE!\n"), []byte("LTRC3\nxxxx")} {
		if _, _, err := Salvage(bytes.NewReader(data)); err == nil {
			t.Errorf("salvage accepted %q", data)
		}
	}
}

// TestReadAllBoundedAllocation feeds headers whose length fields lie about
// gigantic payloads; the decoders must reject them without allocating.
func TestReadAllBoundedAllocation(t *testing.T) {
	// LTRC2: length beyond maxChunkLen is rejected outright.
	v2 := append([]byte(magic), chunkMarker[:]...)
	v2 = binary.AppendUvarint(v2, tagThreadBase)
	v2 = binary.AppendUvarint(v2, 1<<40)
	if _, err := ReadAll(bytes.NewReader(v2)); err == nil {
		t.Error("LTRC2 accepted a 1TB chunk length")
	}
	// LTRC1: the incremental reader stops at EOF long before 1TB.
	v1 := append([]byte(magicV1), 0x01)
	v1 = binary.AppendUvarint(v1, 1<<40)
	if _, err := ReadAll(bytes.NewReader(v1)); err == nil {
		t.Error("LTRC1 accepted a 1TB chunk length")
	}
}
