package trace

import (
	"bytes"
	"encoding/json"
	"errors"
)

// ErrLegacyStream is returned by Stream.Feed for LTRC1 input: the legacy
// format has no chunk markers or CRCs, so it cannot be decoded
// incrementally with resynchronization. Use ReadAll or Salvage instead.
var ErrLegacyStream = errors.New("trace: stream: legacy LTRC1 log (no markers); use ReadAll or Salvage")

var errStreamNotALog = errors.New("trace: stream: not a LiteRace log (bad magic)")

// Stream is an incremental LTRC2 decoder: feed it the encoded log in
// arbitrary pieces (tailing a growing file, reading a socket) and it
// emits each accepted thread chunk as soon as the bytes for it are
// complete. It applies exactly the salvage decoder's recovery rules —
// marker resynchronization after corruption, CRC verification, duplicate
// drop, sequence-gap accounting, checkpoint metadata fallback — so that
// feeding any byte string through Feed+Finish accepts precisely the
// chunks Salvage would accept from the same bytes, with the same
// SalvageReport accounting. Memory stays bounded by the largest pending
// chunk (maxChunkLen) regardless of input size.
//
// The one thing an online decoder cannot know is whether missing bytes
// are still in flight: an incomplete chunk at the end of the buffer makes
// Feed wait for more input, and only Finish — the caller's assertion that
// the input is over — applies the salvage decoder's truncated-tail rules
// to whatever remains.
type Stream struct {
	// emit receives each accepted thread chunk in byte order: the chunk's
	// decoded events and whether the thread's stream is suspect at this
	// point (it follows a salvage loss — a dropped chunk or sequence gap —
	// so orderings derived from these events are no longer trustworthy).
	emit func(tid int32, events []Event, suspect bool)

	buf  []byte // unconsumed input
	base int64  // absolute offset of buf[0] in the full input

	magicDone bool
	finished  bool
	err       error // sticky Feed error
	finErr    error

	// garbage tracks an active resynchronization run: bytes are being
	// discarded while scanning for the next chunk marker. garbageTrunc
	// distinguishes a run that began at a chunk boundary (salvage flags
	// the tail as truncated if it never resynchronizes) from one that
	// began inside a corrupt chunk (salvage silently skips it).
	garbage      bool
	garbageTrunc bool
	garbageStart int64

	lastSeq map[int32]uint64
	suspect map[int32]bool

	meta    Meta
	sawMeta bool
	ckpt    *Meta
	ckptAt  int64

	rep *SalvageReport
}

// NewStream returns an incremental decoder delivering accepted thread
// chunks to emit (which may be nil to decode for the report alone).
func NewStream(emit func(tid int32, events []Event, suspect bool)) *Stream {
	return &Stream{
		emit:    emit,
		lastSeq: make(map[int32]uint64),
		suspect: make(map[int32]bool),
		rep: &SalvageReport{
			Format:     "LTRC2",
			MetaSource: "none",
		},
	}
}

// Feed appends p to the stream and decodes every chunk that is now
// complete, invoking emit for each accepted thread chunk. An incomplete
// chunk at the end of the buffer is kept for the next Feed. The error is
// non-nil only when the input is not an LTRC2 log at all; corruption
// within the stream is recovered from and accounted, never fatal.
func (s *Stream) Feed(p []byte) error {
	if s.finished {
		return errors.New("trace: stream: feed after finish")
	}
	if s.err != nil {
		return s.err
	}
	s.rep.TotalBytes += int64(len(p))
	s.buf = append(s.buf, p...)
	if !s.magicDone {
		if len(s.buf) < len(magic) {
			// Reject early when the prefix can no longer extend to a magic.
			if !bytes.HasPrefix([]byte(magic), s.buf) && !bytes.HasPrefix([]byte(magicV1), s.buf) {
				s.err = errStreamNotALog
				return s.err
			}
			return nil
		}
		switch {
		case bytes.HasPrefix(s.buf, []byte(magic)):
			s.magicDone = true
			s.rep.MagicBytes = int64(len(magic))
			s.consume(len(magic))
		case bytes.HasPrefix(s.buf, []byte(magicV1)):
			s.err = ErrLegacyStream
			return s.err
		default:
			s.err = errStreamNotALog
			return s.err
		}
	}
	s.parse(false)
	return nil
}

// Finish declares the input complete: the remaining buffer is decoded
// under the salvage decoder's end-of-input rules (a chunk cut short is
// dropped and the tail flagged truncated) and the metadata source is
// resolved. The report remains readable afterwards; further Feeds error.
func (s *Stream) Finish() (*SalvageReport, error) {
	if s.finished {
		return s.rep, s.finErr
	}
	s.finished = true
	if s.err != nil {
		s.finErr = s.err
		return s.rep, s.finErr
	}
	if !s.magicDone {
		// A producer that connected and died before completing the
		// 6-byte header left nothing decodable: zero bytes, or a proper
		// prefix of the magic (anything else already made Feed error).
		// There are no chunks to salvage and no tail to truncate, so
		// Finish succeeds with the bytes accounted as dropped instead of
		// inventing a torn-tail failure.
		if n := len(s.buf); n > 0 {
			s.drop(n)
		}
		return s.rep, nil
	}
	s.parse(true)
	switch {
	case s.sawMeta:
		s.rep.MetaSource = "trailer"
	case s.ckpt != nil:
		s.meta = *s.ckpt
		s.rep.MetaSource = "checkpoint"
		s.rep.CheckpointAt = s.ckptAt
	}
	return s.rep, nil
}

// Report returns the live accounting so far; before Finish the
// truncation and metadata-source fields are still provisional.
func (s *Stream) Report() *SalvageReport { return s.rep }

// Complete reports whether the metadata trailer has been decoded — the
// writer's Close ran, so no more chunks are coming.
func (s *Stream) Complete() bool { return s.sawMeta }

// Meta returns the best run metadata available: the trailer once
// Complete, otherwise (after Finish) the last checkpoint if any.
func (s *Stream) Meta() Meta { return s.meta }

// Buffered returns the number of bytes held waiting for a chunk to
// complete.
func (s *Stream) Buffered() int { return len(s.buf) }

func (s *Stream) consume(n int) {
	s.base += int64(n)
	s.buf = s.buf[n:]
	if len(s.buf) == 0 {
		s.buf = nil
	}
}

func (s *Stream) drop(n int) {
	if n > 0 {
		s.rep.BytesDropped += int64(n)
	}
	s.consume(n)
}

func (s *Stream) truncateAt(at int64) {
	s.rep.Truncated = true
	if s.rep.TruncatedAt == 0 {
		s.rep.TruncatedAt = at
	}
}

func (s *Stream) markSuspect(tid int32) { s.suspect[tid] = true }

// parse consumes every decodable chunk at the head of the buffer. With
// final unset it stops at the first chunk still awaiting bytes; with
// final set it applies the salvage end-of-input rules instead.
func (s *Stream) parse(final bool) {
	if final && len(s.buf) == 0 && s.garbage {
		// A garbage run consumed the rest of the input in earlier feeds;
		// the input ending here makes it the truncated tail.
		if s.garbageTrunc {
			s.truncateAt(s.garbageStart)
		}
		s.garbage = false
		return
	}
	for len(s.buf) > 0 {
		idx := bytes.Index(s.buf, chunkMarker[:])
		if idx != 0 {
			// Garbage (or a partial marker) at the head: resynchronize.
			if !s.garbage {
				// Entered from a chunk boundary; salvage flags the tail
				// truncated if no marker ever follows.
				s.garbage, s.garbageTrunc, s.garbageStart = true, true, s.base
			}
			if idx > 0 {
				s.drop(idx)
				s.garbage = false
				continue
			}
			// No full marker buffered yet.
			if final {
				if s.garbageTrunc {
					s.truncateAt(s.garbageStart)
				}
				s.drop(len(s.buf))
				s.garbage = false
				return
			}
			keep := markerPrefixLen(s.buf)
			s.drop(len(s.buf) - keep)
			return
		}
		s.garbage = false

		tag, payload, end, crcOK, err := parseChunkV2(s.buf, 0)
		if err != nil {
			if errors.Is(err, errTruncatedChunk) {
				if !final {
					// The chunk's bytes have not all arrived; wait.
					return
				}
				// Mirror salvage: a bit flip in a length field can fake
				// truncation, so look for a later marker before concluding
				// the log just ends here.
				if next := bytes.Index(s.buf[1:], chunkMarker[:]); next >= 0 {
					s.rep.ChunksDropped++
					if tag >= tagThreadBase {
						tid := int32(uint32(tag - tagThreadBase))
						s.rep.thread(tid).DroppedChunks++
						s.markSuspect(tid)
					}
					s.drop(1 + next)
					continue
				}
				s.truncateAt(s.base)
				s.drop(len(s.buf))
				return
			}
			// In-place corruption: drop the chunk (or the bytes that
			// pretended to be one) and resynchronize on the next marker.
			s.rep.ChunksDropped++
			if !crcOK && end > 0 {
				s.rep.CRCFailures++
			}
			if tag >= tagThreadBase {
				tid := int32(uint32(tag - tagThreadBase))
				tl := s.rep.thread(tid)
				tl.DroppedChunks++
				tl.DroppedBytes += int64(len(payload))
				s.markSuspect(tid)
			}
			if next := bytes.Index(s.buf[1:], chunkMarker[:]); next >= 0 {
				s.drop(1 + next)
				continue
			}
			// Skip silently to end of input, like salvage's corrupt-chunk
			// path (which does not flag truncation).
			s.garbage, s.garbageTrunc, s.garbageStart = true, false, s.base
			if final {
				s.drop(len(s.buf))
				s.garbage = false
				return
			}
			keep := markerPrefixLen(s.buf)
			s.drop(len(s.buf) - keep)
			return
		}

		// A well-formed chunk.
		switch {
		case tag == tagMeta:
			if jerr := json.Unmarshal(payload, &s.meta); jerr != nil {
				s.rep.ChunksDropped++
				s.rep.BytesDropped += int64(end)
			} else {
				s.sawMeta = true
				s.rep.ChunksOK++
				s.rep.BytesOK += int64(end)
			}
		case tag == tagCheckpoint:
			var m Meta
			if jerr := json.Unmarshal(payload, &m); jerr != nil {
				s.rep.ChunksDropped++
				s.rep.BytesDropped += int64(end)
			} else {
				s.ckpt, s.ckptAt = &m, s.base
				s.rep.ChunksOK++
				s.rep.BytesOK += int64(end)
			}
		default:
			tid := int32(uint32(tag - tagThreadBase))
			tl := s.rep.thread(tid)
			seq, rest, serr := takeUvarint(payload)
			if serr != nil {
				s.rep.ChunksDropped++
				tl.DroppedChunks++
				tl.DroppedBytes += int64(len(payload))
				s.markSuspect(tid)
				s.drop(end)
				continue
			}
			if seq <= s.lastSeq[tid] {
				// Duplicate (or replayed) chunk: already in the stream.
				s.rep.DuplicateChunks++
				s.drop(end)
				continue
			}
			if gap := seq - s.lastSeq[tid] - 1; gap > 0 {
				tl.SeqGaps += gap
				s.rep.SeqGaps += gap
				s.markSuspect(tid)
			}
			s.lastSeq[tid] = seq
			evs, n, derr := decodeEventsPrefix(tid, rest)
			tl.EventsSalvaged += len(evs)
			s.rep.EventsSalvaged += len(evs)
			suspect := s.suspect[tid]
			if derr != nil {
				// CRC-valid but undecodable tail: keep the prefix, mark
				// the thread suspect from here on.
				tl.DroppedBytes += int64(len(rest) - n)
				s.markSuspect(tid)
				s.rep.BytesDropped += int64(len(rest) - n)
				s.rep.BytesOK += int64(end) - int64(len(rest)-n)
			} else {
				s.rep.BytesOK += int64(end)
			}
			s.rep.ChunksOK++
			if len(evs) > 0 && s.emit != nil {
				s.emit(tid, evs, suspect)
			}
		}
		s.consume(end)
	}
}

// markerPrefixLen returns the length of the longest proper prefix of the
// chunk marker that is a suffix of b — the bytes a resynchronizing
// stream must keep in case the marker completes in the next feed.
func markerPrefixLen(b []byte) int {
	for k := len(chunkMarker) - 1; k > 0; k-- {
		if len(b) >= k && bytes.Equal(b[len(b)-k:], chunkMarker[:k]) {
			return k
		}
	}
	return 0
}
