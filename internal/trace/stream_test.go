package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// streamCollect feeds data to a Stream in pieces of the given sizes
// (cycled; a single 0 means "everything at once") and reassembles the
// emitted chunks into a Log the way the online pipeline would.
func streamCollect(t *testing.T, data []byte, sizes []int) (*Log, *SalvageReport, error) {
	t.Helper()
	log := &Log{Threads: make(map[int32][]Event)}
	s := NewStream(func(tid int32, evs []Event, suspect bool) {
		if suspect {
			if log.Degraded == nil {
				log.Degraded = make(map[int32]int)
			}
			if _, ok := log.Degraded[tid]; !ok {
				log.Degraded[tid] = len(log.Threads[tid])
			}
		}
		log.Threads[tid] = append(log.Threads[tid], evs...)
		log.ChunkOrder = append(log.ChunkOrder, ChunkRef{TID: tid, N: len(evs)})
	})
	for off, i := 0, 0; off < len(data); i++ {
		n := sizes[i%len(sizes)]
		if n <= 0 || n > len(data)-off {
			n = len(data) - off
		}
		if err := s.Feed(data[off : off+n]); err != nil {
			return log, s.Report(), err
		}
		off += n
	}
	rep, err := s.Finish()
	log.Meta = s.Meta()
	return log, rep, err
}

// effectiveDegraded normalizes a Degraded map to only the entries that
// change replay behavior (an index at or past the end of the stream
// marks no event suspect).
func effectiveDegraded(log *Log) map[int32]int {
	out := make(map[int32]int)
	for tid, idx := range log.Degraded {
		if idx < len(log.Threads[tid]) {
			out[tid] = idx
		}
	}
	return out
}

// checkStreamMatchesSalvage asserts that incremental decoding of data —
// at every piece-size pattern given — accepts exactly what Salvage
// accepts, with identical accounting.
func checkStreamMatchesSalvage(t *testing.T, data []byte, sizePatterns [][]int) {
	t.Helper()
	slog, srep, serr := Salvage(bytes.NewReader(data))
	for _, sizes := range sizePatterns {
		glog, grep, gerr := streamCollect(t, data, sizes)
		if (serr != nil) != (gerr != nil) {
			t.Fatalf("sizes %v: salvage err %v, stream err %v", sizes, serr, gerr)
		}
		if serr != nil {
			continue
		}
		if !reflect.DeepEqual(glog.Threads, slog.Threads) {
			t.Fatalf("sizes %v: stream decoded different events than salvage", sizes)
		}
		if !reflect.DeepEqual(glog.ChunkOrder, slog.ChunkOrder) {
			t.Fatalf("sizes %v: chunk order %v != salvage %v", sizes, glog.ChunkOrder, slog.ChunkOrder)
		}
		if got, want := effectiveDegraded(glog), effectiveDegraded(slog); !reflect.DeepEqual(got, want) {
			t.Fatalf("sizes %v: degraded marks %v != salvage %v", sizes, got, want)
		}
		if !reflect.DeepEqual(glog.Meta, slog.Meta) {
			t.Fatalf("sizes %v: stream meta %+v != salvage %+v", sizes, glog.Meta, slog.Meta)
		}
		if !reflect.DeepEqual(grep, srep) {
			t.Fatalf("sizes %v: stream report %+v != salvage %+v", sizes, grep, srep)
		}
		checkRecon(t, grep)
	}
}

var streamSizePatterns = [][]int{{0}, {1}, {3, 17, 1}, {257}, {64 << 10}}

func TestStreamPristineMatchesReadAll(t *testing.T) {
	data, want := buildLog(t, 11, 3, 200, 64)
	checkStreamMatchesSalvage(t, data, streamSizePatterns)

	log, rep, err := streamCollect(t, data, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lossy() {
		t.Errorf("pristine log reported lossy: %s", rep.Summary())
	}
	if rep.MetaSource != "trailer" || log.Meta.Module != "salvage-test" {
		t.Errorf("meta source %q module %q", rep.MetaSource, log.Meta.Module)
	}
	for tid, evs := range want {
		if !reflect.DeepEqual(log.Threads[tid], evs) {
			t.Errorf("thread %d: stream decoded %d events, want %d", tid, len(log.Threads[tid]), len(evs))
		}
	}
}

func TestStreamCompleteFlag(t *testing.T) {
	data, _ := buildLog(t, 12, 2, 50, 25)
	s := NewStream(nil)
	// Everything but the trailer's last byte: not complete.
	if err := s.Feed(data[:len(data)-1]); err != nil {
		t.Fatal(err)
	}
	if s.Complete() {
		t.Fatal("stream complete before the trailer finished")
	}
	if s.Buffered() == 0 {
		t.Fatal("expected the torn trailer to be buffered")
	}
	if err := s.Feed(data[len(data)-1:]); err != nil {
		t.Fatal(err)
	}
	if !s.Complete() {
		t.Fatal("stream not complete after the full trailer")
	}
	if s.Buffered() != 0 {
		t.Fatalf("%d bytes still buffered after a complete log", s.Buffered())
	}
	rep, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lossy() {
		t.Errorf("complete log reported lossy: %s", rep.Summary())
	}
}

func TestStreamTruncationAtEveryChunkBoundary(t *testing.T) {
	data, _ := buildLog(t, 13, 2, 300, 50)
	spans, err := ChunkSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range spans {
		for _, cut := range []int{span.Start, span.Start + 5, span.End - 1} {
			checkStreamMatchesSalvage(t, data[:cut], [][]int{{0}, {7}})
		}
	}
}

func TestStreamBitFlipsMatchSalvage(t *testing.T) {
	data, _ := buildLog(t, 14, 3, 200, 40)
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 40; i++ {
		mut := append([]byte(nil), data...)
		mut[len(magic)+r.Intn(len(mut)-len(magic))] ^= 1 << uint(r.Intn(8))
		checkStreamMatchesSalvage(t, mut, [][]int{{0}, {13}})
	}
}

func TestStreamChunkDropAndDupMatchSalvage(t *testing.T) {
	data, _ := buildLog(t, 15, 2, 300, 30)
	spans, err := ChunkSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		sp := spans[r.Intn(len(spans))]
		dropped := append(append([]byte(nil), data[:sp.Start]...), data[sp.End:]...)
		checkStreamMatchesSalvage(t, dropped, [][]int{{0}, {11}})
		duped := append(append([]byte(nil), data[:sp.End]...), data[sp.Start:]...)
		checkStreamMatchesSalvage(t, duped, [][]int{{0}, {11}})
	}
}

func TestStreamTornTailThenCompletes(t *testing.T) {
	data, _ := buildLog(t, 16, 3, 400, 60)
	spans, err := ChunkSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	// Cut in the middle of a mid-log chunk, then deliver the rest: the
	// stream must wait (no truncation) and end up identical to a
	// single-shot decode.
	cut := spans[len(spans)/2].Start + 3
	whole, wholeRep, err := streamCollect(t, data, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(nil)
	if err := s.Feed(data[:cut]); err != nil {
		t.Fatal(err)
	}
	if s.Report().Truncated {
		t.Fatal("live stream flagged truncation before Finish")
	}
	got := &Log{Threads: make(map[int32][]Event)}
	s2 := NewStream(func(tid int32, evs []Event, _ bool) {
		got.Threads[tid] = append(got.Threads[tid], evs...)
	})
	if err := s2.Feed(data[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := s2.Feed(data[cut:]); err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Threads, whole.Threads) {
		t.Fatal("torn-then-completed decode differs from single-shot decode")
	}
	if !reflect.DeepEqual(rep, wholeRep) {
		t.Fatalf("torn-then-completed report %+v != single-shot %+v", rep, wholeRep)
	}
}

func TestStreamTrailingGarbageDrainedBeforeFinish(t *testing.T) {
	// Corrupt the last chunk's marker so the tail becomes a garbage run
	// with no later marker, and feed so the run is fully dropped before
	// Finish — the truncation flag must survive the empty buffer.
	data, _ := buildLog(t, 18, 2, 200, 40)
	spans, err := ChunkSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	last := spans[len(spans)-1]
	for b := 0; b < len(chunkMarker); b++ {
		mut := append([]byte(nil), data...)
		mut[last.Start+b] ^= 0x55
		checkStreamMatchesSalvage(t, mut, [][]int{{0}, {1}, {len(mut) - 2}})
	}
}

func TestStreamRejectsLegacyAndGarbage(t *testing.T) {
	s := NewStream(nil)
	if err := s.Feed([]byte("LTRC1\nxxxx")); !errors.Is(err, ErrLegacyStream) {
		t.Fatalf("LTRC1 feed error = %v, want ErrLegacyStream", err)
	}
	s = NewStream(nil)
	if err := s.Feed([]byte("GIF89a")); err == nil {
		t.Fatal("garbage accepted")
	}
	// A short prefix that can still become a magic is not an error yet,
	// and a producer dying there finishes cleanly with the bytes
	// accounted as dropped (see TestStreamDeadProducerFinishesCleanly).
	s = NewStream(nil)
	if err := s.Feed([]byte("LT")); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Finish()
	if err != nil {
		t.Fatalf("finish on an incomplete magic: %v", err)
	}
	if rep.Truncated || rep.BytesDropped != 2 || rep.TotalBytes != 2 {
		t.Fatalf("incomplete-magic report = %+v", rep)
	}
}

// TestStreamDeadProducerFinishesCleanly covers a producer that connects
// and dies before its first complete chunk: zero-byte and sub-header
// inputs must Finish without error and with accurate accounting — no
// spurious torn tail, no "not a log" failure for a prefix of a valid log.
func TestStreamDeadProducerFinishesCleanly(t *testing.T) {
	// Zero bytes: nothing arrived at all.
	s := NewStream(nil)
	rep, err := s.Finish()
	if err != nil {
		t.Fatalf("zero-byte finish: %v", err)
	}
	if rep.Truncated || rep.TotalBytes != 0 || rep.BytesDropped != 0 ||
		rep.ChunksOK != 0 || rep.EventsSalvaged != 0 || rep.MetaSource != "none" {
		t.Fatalf("zero-byte report = %+v", rep)
	}

	// Every proper prefix of the magic, fed in one piece and byte by
	// byte: clean Finish, all bytes dropped, never truncated.
	for cut := 1; cut < len("LTRC2\n"); cut++ {
		for _, pieces := range [][]byte{[]byte("LTRC2\n")[:cut]} {
			one := NewStream(nil)
			if err := one.Feed(pieces); err != nil {
				t.Fatalf("prefix %d feed: %v", cut, err)
			}
			rep, err := one.Finish()
			if err != nil {
				t.Fatalf("prefix %d finish: %v", cut, err)
			}
			if rep.Truncated || rep.TotalBytes != int64(cut) || rep.BytesDropped != int64(cut) {
				t.Fatalf("prefix %d report = %+v", cut, rep)
			}
		}
		drip := NewStream(nil)
		for _, b := range []byte("LTRC2\n")[:cut] {
			if err := drip.Feed([]byte{b}); err != nil {
				t.Fatalf("prefix %d drip feed: %v", cut, err)
			}
		}
		rep, err := drip.Finish()
		if err != nil {
			t.Fatalf("prefix %d drip finish: %v", cut, err)
		}
		if rep.Truncated || rep.BytesDropped != int64(cut) {
			t.Fatalf("prefix %d drip report = %+v", cut, rep)
		}
	}

	// The full magic and nothing else is still clean: the writer opened
	// the log and never flushed a chunk.
	m := NewStream(nil)
	if err := m.Feed([]byte("LTRC2\n")); err != nil {
		t.Fatal(err)
	}
	rep, err = m.Finish()
	if err != nil {
		t.Fatalf("magic-only finish: %v", err)
	}
	if rep.Truncated || rep.BytesDropped != 0 || rep.MagicBytes != 6 {
		t.Fatalf("magic-only report = %+v", rep)
	}
}

func TestStreamFeedAfterFinish(t *testing.T) {
	data, _ := buildLog(t, 17, 1, 10, 0)
	s := NewStream(nil)
	if err := s.Feed(data); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := s.Feed([]byte{1}); err == nil {
		t.Fatal("feed after finish succeeded")
	}
}
