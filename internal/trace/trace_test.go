package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"literace/internal/lir"
	"literace/internal/obs"
)

// obsNew keeps the telemetry tests terse.
func obsNew() *obs.Registry { return obs.New() }

func TestCounterOfInRangeAndSpread(t *testing.T) {
	seen := make(map[uint8]bool)
	for i := uint64(0); i < 10000; i++ {
		c := CounterOf(i)
		if int(c) >= NumCounters {
			t.Fatalf("counter %d out of range", c)
		}
		seen[c] = true
	}
	if len(seen) < NumCounters {
		t.Errorf("only %d/%d counters used across 10k syncvars", len(seen), NumCounters)
	}
	// Deterministic.
	if CounterOf(42) != CounterOf(42) {
		t.Error("CounterOf not deterministic")
	}
}

func TestSyncVarNamespaces(t *testing.T) {
	// Thread, page, and plain-address SyncVars must never collide.
	addrs := []uint64{0, 1, 512, 1 << 20}
	for _, a := range addrs {
		tv := ThreadVar(int32(a))
		pv := PageVar(a)
		if tv == a || pv == a || tv == pv {
			t.Errorf("namespace collision for %d: thread=%#x page=%#x", a, tv, pv)
		}
	}
	if ThreadVar(1) == ThreadVar(2) || PageVar(1) == PageVar(2) {
		t.Error("distinct ids collide within a namespace")
	}
}

func TestKindClassification(t *testing.T) {
	if !KindRead.IsMem() || !KindWrite.IsMem() {
		t.Error("read/write should be memory kinds")
	}
	for _, k := range []Kind{KindAcquire, KindRelease, KindAcqRel} {
		if k.IsMem() || !k.IsSync() {
			t.Errorf("%v misclassified", k)
		}
	}
	if KindRead.IsSync() {
		t.Error("read is not sync")
	}
}

func TestStringers(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	for o := SyncOp(0); o < numSyncOps; o++ {
		if strings.HasPrefix(o.String(), "syncop(") {
			t.Errorf("syncop %d has no name", o)
		}
	}
	mem := Event{Kind: KindWrite, TID: 3, Addr: 0x10, Mask: 5}
	if !strings.Contains(mem.String(), "write") {
		t.Errorf("event string %q", mem.String())
	}
	syn := Event{Kind: KindRelease, Op: OpUnlock, TID: 1, Addr: 0x20, Counter: 7, TS: 9}
	if !strings.Contains(syn.String(), "unlock") {
		t.Errorf("event string %q", syn.String())
	}
}

func randomEvent(r *rand.Rand, tid int32) Event {
	e := Event{
		TID:  tid,
		PC:   lir.PC{Func: int32(r.Intn(100)), Index: int32(r.Intn(1000))},
		Addr: uint64(r.Int63()),
	}
	switch r.Intn(5) {
	case 0:
		e.Kind, e.Mask = KindRead, uint32(r.Intn(256))
	case 1:
		e.Kind, e.Mask = KindWrite, uint32(r.Intn(256))
	case 2:
		e.Kind, e.Op = KindAcquire, OpLock
		e.Counter, e.TS = uint8(r.Intn(NumCounters)), uint64(r.Intn(1<<20))+1
	case 3:
		e.Kind, e.Op = KindRelease, OpUnlock
		e.Counter, e.TS = uint8(r.Intn(NumCounters)), uint64(r.Intn(1<<20))+1
	default:
		e.Kind, e.Op = KindAcqRel, OpCas
		e.Counter, e.TS = uint8(r.Intn(NumCounters)), uint64(r.Intn(1<<20))+1
	}
	return e
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32][]Event{}
	for tid := int32(0); tid < 4; tid++ {
		tw := w.Thread(tid)
		n := 100 + r.Intn(2000)
		for i := 0; i < n; i++ {
			e := randomEvent(r, tid)
			want[tid] = append(want[tid], e)
			if err := tw.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		if tw.Count() != uint64(n) {
			t.Errorf("thread %d count = %d, want %d", tid, tw.Count(), n)
		}
	}
	meta := Meta{
		Module: "m", Seed: 7, Threads: 4, MemOps: 123, SyncOps: 45,
		Samplers: []string{"TL-Ad", "Rnd10"}, SampledOps: []uint64{10, 50},
		Primary: "Full",
	}
	if err := w.Close(meta); err != nil {
		t.Fatal(err)
	}

	log, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if log.Meta.Module != "m" || log.Meta.Seed != 7 || log.Meta.Primary != "Full" {
		t.Errorf("meta round trip failed: %+v", log.Meta)
	}
	if log.Meta.LoggedBytes == 0 {
		t.Error("LoggedBytes not recorded")
	}
	for tid, evs := range want {
		got := log.Threads[tid]
		if !reflect.DeepEqual(got, evs) {
			t.Fatalf("thread %d events differ (%d vs %d)", tid, len(got), len(evs))
		}
	}
	if log.NumEvents() == 0 {
		t.Error("NumEvents = 0")
	}
	tids := log.TIDs()
	if !reflect.DeepEqual(tids, []int32{0, 1, 2, 3}) {
		t.Errorf("TIDs = %v", tids)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		var want []Event
		tw := w.Thread(1)
		for i := 0; i < int(n); i++ {
			e := randomEvent(r, 1)
			want = append(want, e)
			if tw.Append(e) != nil {
				return false
			}
		}
		if w.Close(Meta{}) != nil {
			return false
		}
		log, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		got := log.Threads[1]
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedFlushesPreserveThreadOrder(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.Thread(0), w.Thread(1)
	var wantA, wantB []Event
	for i := 0; i < 5000; i++ {
		ea := Event{Kind: KindRead, TID: 0, Addr: uint64(i)}
		eb := Event{Kind: KindWrite, TID: 1, Addr: uint64(i)}
		wantA = append(wantA, ea)
		wantB = append(wantB, eb)
		if err := a.Append(ea); err != nil {
			t.Fatal(err)
		}
		if err := b.Append(eb); err != nil {
			t.Fatal(err)
		}
		if i%777 == 0 {
			if err := a.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(Meta{}); err != nil {
		t.Fatal(err)
	}
	log, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log.Threads[0], wantA) || !reflect.DeepEqual(log.Threads[1], wantB) {
		t.Error("interleaved flushes corrupted per-thread order")
	}
}

func TestDoubleCloseFails(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Close(Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(Meta{}); err == nil {
		t.Error("second Close should fail")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE!\n")},
		{"no meta", []byte(magic)},
		{"truncated chunk", append([]byte(magic), 1, 100)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadAll(bytes.NewReader(c.data)); err == nil {
				t.Errorf("ReadAll accepted %s", c.name)
			}
		})
	}
}

func TestCorruptEventRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	tw := w.Thread(0)
	if err := tw.Append(Event{Kind: KindRead, Addr: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(Meta{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip the kind byte of the first event to an invalid value. The first
	// chunk begins right after the magic: tag, len, then the event.
	idx := len(magic) + 2
	data[idx] = 0xEE
	if _, err := ReadAll(bytes.NewReader(data)); err == nil {
		t.Error("corrupt kind byte accepted")
	}
}

func TestMetaHelpers(t *testing.T) {
	m := Meta{
		MemOps:     1000,
		Samplers:   []string{"TL-Ad", "Rnd10"},
		SampledOps: []uint64{18, 99},
	}
	if r := m.EffectiveRate(0); r != 0.018 {
		t.Errorf("EffectiveRate(0) = %v", r)
	}
	if r := m.EffectiveRate(5); r != 0 {
		t.Errorf("EffectiveRate out of range = %v", r)
	}
	if m.SamplerIndex("Rnd10") != 1 || m.SamplerIndex("nope") != -1 {
		t.Error("SamplerIndex broken")
	}
	var zero Meta
	if zero.EffectiveRate(0) != 0 {
		t.Error("zero Meta EffectiveRate should be 0")
	}
}

// TestFlushAtBufferBoundary drives a thread buffer exactly to the flush
// threshold and checks chunks split there without losing or reordering
// events.
func TestFlushAtBufferBoundary(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tw := w.Thread(0)

	// Grow the buffer to just below the threshold, then step over it.
	e := Event{Kind: KindWrite, PC: lir.PC{Func: 1, Index: 2}, Addr: 0x1234, Mask: 0x7F}
	n := 0
	for len(tw.buf) < flushThreshold-len(appendEvent(nil, e)) {
		if err := tw.Append(e); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if got := w.BytesWritten(); got != uint64(len(magic)) {
		t.Fatalf("flushed before threshold: %d bytes", got)
	}
	// Crossing the threshold flushes exactly once, emptying the buffer.
	for i := 0; i < 2; i++ {
		if err := tw.Append(e); err != nil {
			t.Fatal(err)
		}
		n++
	}
	afterCross := w.BytesWritten()
	if afterCross <= uint64(len(magic)) {
		t.Fatal("threshold crossing did not flush")
	}
	if len(tw.buf) == 0 || len(tw.buf) >= flushThreshold {
		t.Fatalf("post-flush buffer length %d", len(tw.buf))
	}

	if err := w.Close(Meta{}); err != nil {
		t.Fatal(err)
	}
	log, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if log.NumEvents() != n {
		t.Fatalf("decoded %d events, appended %d", log.NumEvents(), n)
	}
}

// TestEmptyFlushIsNoop checks Flush on an empty buffer emits nothing: no
// zero-length chunks, no byte growth, no spurious telemetry.
func TestEmptyFlushIsNoop(t *testing.T) {
	reg := obsNew()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.SetObs(reg)
	tw := w.Thread(7)
	for i := 0; i < 3; i++ {
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.BytesWritten(); got != uint64(len(magic)) {
		t.Fatalf("empty flush wrote %d bytes", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["trace.chunks_flushed"] != 0 || snap.Counters["trace.thread_flushes.t7"] != 0 {
		t.Fatalf("empty flush counted: %v", snap.Counters)
	}
	if err := w.Close(Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(&buf); err != nil {
		t.Fatalf("log with only a trailer unreadable: %v", err)
	}
}

// TestWriterTelemetry checks the SetObs counters agree with ground truth:
// bytes match BytesWritten, every event is counted, and per-thread flushes
// are attributed to the right thread.
func TestWriterTelemetry(t *testing.T) {
	reg := obsNew()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.SetObs(reg)
	a, b := w.Thread(0), w.Thread(1)
	e := Event{Kind: KindRead, Addr: 9}
	for i := 0; i < 10; i++ {
		if err := a.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Append(e); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil { // explicit mid-run flush
		t.Fatal(err)
	}
	if err := w.Close(Meta{}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["trace.events_appended"] != 11 {
		t.Errorf("events_appended = %d", snap.Counters["trace.events_appended"])
	}
	if snap.Counters["trace.bytes_written"] != w.BytesWritten() {
		t.Errorf("bytes_written = %d, writer says %d",
			snap.Counters["trace.bytes_written"], w.BytesWritten())
	}
	// Chunks: thread 0's explicit flush, thread 1's close flush, the meta
	// trailer.
	if snap.Counters["trace.chunks_flushed"] != 3 {
		t.Errorf("chunks_flushed = %d", snap.Counters["trace.chunks_flushed"])
	}
	if snap.Counters["trace.thread_flushes.t0"] != 1 || snap.Counters["trace.thread_flushes.t1"] != 1 {
		t.Errorf("per-thread flushes: %v", snap.Counters)
	}
}

func TestBytesWrittenGrows(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	before := w.BytesWritten()
	tw := w.Thread(0)
	for i := 0; i < 10000; i++ {
		if err := tw.Append(Event{Kind: KindRead, Addr: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(Meta{}); err != nil {
		t.Fatal(err)
	}
	if w.BytesWritten() <= before {
		t.Error("BytesWritten did not grow")
	}
	if int(w.BytesWritten()) != buf.Len() {
		t.Errorf("BytesWritten = %d, buffer has %d", w.BytesWritten(), buf.Len())
	}
}
