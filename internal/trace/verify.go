package trace

import (
	"errors"
	"fmt"
	"sort"
)

// Verify checks a decoded log for structural well-formedness beyond what
// decoding enforces:
//
//   - every sync event's counter is in range;
//   - per counter, the timestamps across all threads are exactly the
//     dense sequence 1..N with no duplicates or gaps (the §4.2 invariant
//     the offline replayer relies on);
//   - per thread, timestamps on each counter strictly increase in program
//     order (a thread cannot observe its own operations out of order);
//   - sampler masks fit the declared sampler set.
//
// It returns all problems found, joined.
func Verify(log *Log) error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	maskLimit := uint32(0)
	if n := len(log.Meta.Samplers); n > 0 {
		if n >= 32 {
			add("trace: %d samplers exceed the 32-bit mask", n)
		} else {
			maskLimit = uint32(1)<<uint(n) - 1
		}
	}

	perCounter := make(map[uint8][]uint64)
	for tid, evs := range log.Threads {
		lastTS := make(map[uint8]uint64)
		lastSched := uint64(0)
		for i, e := range evs {
			if e.TID != tid {
				add("trace: thread %d event %d carries tid %d", tid, i, e.TID)
			}
			switch {
			case e.Kind.IsSync():
				if int(e.Counter) >= NumCounters {
					add("trace: thread %d event %d: counter %d out of range", tid, i, e.Counter)
					continue
				}
				if e.TS == 0 {
					add("trace: thread %d event %d: zero timestamp", tid, i)
				}
				if prev := lastTS[e.Counter]; e.TS <= prev {
					add("trace: thread %d event %d: counter %d timestamp %d not increasing (prev %d)",
						tid, i, e.Counter, e.TS, prev)
				}
				lastTS[e.Counter] = e.TS
				perCounter[e.Counter] = append(perCounter[e.Counter], e.TS)
			case e.Kind.IsMem():
				if maskLimit != 0 && e.Mask > maskLimit {
					add("trace: thread %d event %d: mask %#x exceeds sampler set", tid, i, e.Mask)
				}
			case e.Kind.IsSched():
				// Scheduler markers carry the virtual instruction clock in
				// TS; it must be non-decreasing along each thread.
				if e.Op != OpSliceBegin && e.Op != OpSliceEnd && e.Op != OpSlicePreempt {
					add("trace: thread %d event %d: sched event with op %s", tid, i, e.Op)
				}
				if e.TS < lastSched {
					add("trace: thread %d event %d: sched clock %d decreasing (prev %d)",
						tid, i, e.TS, lastSched)
				}
				lastSched = e.TS
			default:
				add("trace: thread %d event %d: unknown kind %d", tid, i, e.Kind)
			}
		}
	}

	for c, tss := range perCounter {
		sort.Slice(tss, func(i, j int) bool { return tss[i] < tss[j] })
		for i, ts := range tss {
			if ts != uint64(i+1) {
				add("trace: counter %d: timestamps not dense at position %d (have %d, want %d)", c, i, ts, i+1)
				break
			}
		}
	}
	return errors.Join(errs...)
}
