package trace

import (
	"strings"
	"testing"
)

func validLog() *Log {
	// Two threads, two counters, dense timestamps.
	return &Log{
		Meta: Meta{Samplers: []string{"A", "B"}},
		Threads: map[int32][]Event{
			0: {
				{Kind: KindAcquire, Op: OpLock, TID: 0, Addr: 1, Counter: 3, TS: 1},
				{Kind: KindWrite, TID: 0, Addr: 9, Mask: 0b11},
				{Kind: KindRelease, Op: OpUnlock, TID: 0, Addr: 1, Counter: 3, TS: 2},
			},
			1: {
				{Kind: KindAcquire, Op: OpLock, TID: 1, Addr: 1, Counter: 3, TS: 3},
				{Kind: KindRead, TID: 1, Addr: 9, Mask: 0b01},
				{Kind: KindRelease, Op: OpUnlock, TID: 1, Addr: 1, Counter: 3, TS: 4},
				{Kind: KindAcqRel, Op: OpCas, TID: 1, Addr: 2, Counter: 7, TS: 1},
			},
		},
	}
}

func TestVerifyAcceptsValid(t *testing.T) {
	if err := Verify(validLog()); err != nil {
		t.Errorf("valid log rejected: %v", err)
	}
}

func TestVerifyCatches(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Log)
		want string
	}{
		{"wrong tid", func(l *Log) { l.Threads[0][0].TID = 5 }, "carries tid"},
		{"bad counter", func(l *Log) { l.Threads[0][0].Counter = 200 }, "out of range"},
		{"zero ts", func(l *Log) { l.Threads[0][0].TS = 0 }, "zero timestamp"},
		{"non-increasing", func(l *Log) { l.Threads[0][2].TS = 1 }, "not increasing"},
		{"gap", func(l *Log) { l.Threads[1][3].TS = 5 }, "not dense"},
		{"duplicate ts", func(l *Log) { l.Threads[1][0].TS = 2 }, "not dense"},
		{"mask too big", func(l *Log) { l.Threads[0][1].Mask = 0b100 }, "exceeds sampler set"},
		{"bad kind", func(l *Log) { l.Threads[0][1].Kind = Kind(99) }, "unknown kind"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l := validLog()
			c.mut(l)
			err := Verify(l)
			if err == nil {
				t.Fatalf("Verify accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestVerifyNoSamplersSkipsMaskCheck(t *testing.T) {
	l := validLog()
	l.Meta.Samplers = nil
	l.Threads[0][1].Mask = 0xFFFFFFFF
	if err := Verify(l); err != nil {
		t.Errorf("mask check should be disabled without samplers: %v", err)
	}
}
