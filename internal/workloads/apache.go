package workloads

import "fmt"

// apacheSource generates the Apache web-server benchmark: a pool of worker
// threads each serving a stream of requests. Input 1 is the paper's mixed
// workload (small static pages, large pages, and CGI requests in roughly
// a 3:3:1 ratio); input 2 serves only small static pages. Request handling
// is lock-protected where Apache is (the access log, the CGI process
// table); the planted races live in the statistics module (frequent, three
// counters) and in the configuration/module layer exercised by a late
// graceful-reload thread (rare).
func apacheSource(input int) func(scale int) string {
	return func(scale int) string {
		s := 2500 * scale // requests per worker; 3 workers
		spin := 110000 * scale
		// Rare = nTL + 2*nCP + 1 hot-hot scanner race: 8 for input 1,
		// 9 for input 2 (Table 4).
		nTL, nCP := 5, 1
		nPoke := 3 // + 3 modulo-K hot races -> 9 frequent with counters
		if input == 2 {
			nTL, nCP = 6, 1
			nPoke = 1 // 6 counter + 1 poke = 7 frequent
		}
		tlFns, tlGlobs := emitTLRaceFns("ap_", nTL)
		cpFns, cpGlobs := emitColdPairFns("ap_", nCP)
		scanFns, scanGlobs := emitScannerFns("ap_", s/2)

		pokeGlobs, pokeFns, pokeCalls := "", "", ""
		for i := 0; i < nPoke; i++ {
			pokeGlobs += fmt.Sprintf("glob ap_poke%d 1\n", i)
			pokeFns += fmt.Sprintf(`
func ap_maybe_poke%d 1 4 {
    movi r1, %d
    mod r2, r0, r1
    br r2, skip, do
do:
    glob r3, ap_poke%d
    store r3, 0, r0
skip:
    ret r0
}
`, i, 6+2*i, i)
			pokeCalls += fmt.Sprintf("    call _, ap_maybe_poke%d, r9\n", i)
		}

		var dispatch string
		if input == 1 {
			dispatch = `
    movi r2, 7
    rand r3, r2
    movi r2, 3
    slt r4, r3, r2
    br r4, dosmall, notsmall
notsmall:
    movi r2, 6
    slt r4, r3, r2
    br r4, dolarge, docgi
dosmall:
    call r5, handle_small, r10, r9
    jmp served
dolarge:
    call r5, handle_large, r10, r9
    jmp served
docgi:
    call r5, handle_cgi, r9
    jmp served
served:
`
		} else {
			dispatch = `
    call r5, handle_small, r10, r9
    call _, bump_bytes, r5
served:
`
		}

		return fmt.Sprintf(`; Apache benchmark input %d, scale %d
module apache-%d
glob loglock 1
glob logpos 1
glob logbuf 64
glob cgilock 1
glob cgictr 1
glob statsReqs 1
glob statsBytes 1
glob statsHits 1
%s%s%s%s
func fill_buf 3 6 {
loop:
    br r2, body, done
body:
    addi r2, r2, -1
    add r3, r0, r2
    store r3, 0, r1
    jmp loop
done:
    ret r0
}
func sum_buf 2 8 {
    movi r2, 0
loop:
    br r1, body, done
body:
    addi r1, r1, -1
    add r3, r0, r1
    load r4, r3, 0
    add r2, r2, r4
    jmp loop
done:
    ret r2
}

func handle_small 2 8 {
    ; r0 = private buffer, r1 = request id
    movi r2, 32
    call _, fill_buf, r0, r1, r2
    call r3, sum_buf, r0, r2
    call _, bump_hits
    ret r3
}
func handle_large 2 8 {
    movi r2, 64
    call _, fill_buf, r0, r1, r2
    call r3, sum_buf, r0, r2
    call _, bump_bytes, r2
    ret r3
}
func handle_cgi 1 8 {
    movi r1, 60
    movi r2, 0
cgi:
    addi r1, r1, -1
    add r2, r2, r1
    br r1, cgi, fin
fin:
    glob r3, cgilock
    lock r3
    glob r4, cgictr
    load r5, r4, 0
    addi r5, r5, 1
    store r4, 0, r5
    unlock r3
    ret r2
}

func log_request 1 8 {
    glob r1, loglock
    lock r1
    glob r2, logpos
    load r3, r2, 0
    movi r4, 63
    and r5, r3, r4
    glob r6, logbuf
    add r6, r6, r5
    store r6, 0, r0
    addi r3, r3, 1
    store r2, 0, r3
    unlock r1
    ret r0
}

func bump_reqs 0 4 {
    glob r1, statsReqs
    load r2, r1, 0
    addi r2, r2, 1
    store r1, 0, r2
    ret r2
}
func bump_bytes 1 4 {
    glob r1, statsBytes
    load r2, r1, 0
    add r2, r2, r0
    store r1, 0, r2
    ret r2
}
func bump_hits 0 4 {
    glob r1, statsHits
    load r2, r1, 0
    addi r2, r2, 1
    store r1, 0, r2
    ret r2
}
%s%s%s%s
func worker 1 14 {
    movi r1, 64
    alloc r10, r1
    movi r9, 0
wloop:
    slt r1, r9, r0
    br r1, wbody, wdone
wbody:
%s    call _, log_request, r5
    call _, bump_reqs
%s    addi r9, r9, 1
    jmp wloop
wdone:
    free r10
    ret r9
}

func worker_first 1 14 {
    movi r1, 64
    alloc r10, r1
%s%s%s    call r2, worker, r0
    free r10
    ret r2
}

func reload_thread 1 14 {
%s%s    ret r0
}

func main 0 10 {
    movi r0, %d
    fork r1, worker_first, r0
    fork r2, worker, r0
    fork r3, worker, r0
    fork r8, ap_scanner, r0
    fork r9, ap_scanner, r0
    movi r4, %d
spin:
    addi r4, r4, -1
    br r4, spin, fks
fks:
    movi r5, 0
    fork r5, reload_thread, r5
    join r1
    join r2
    join r3
    join r8
    join r9
    join r5
    glob r6, statsReqs
    load r7, r6, 0
    print r7
    exit
}
entry main
`, input, scale, input,
			tlGlobs, cpGlobs, pokeGlobs, scanGlobs,
			tlFns, cpFns, pokeFns, scanFns,
			dispatch, pokeCalls,
			emitTLRaceWarmCalls("ap_", nTL, 11),
			emitColdPairCalls("ap_", nCP, 11),
			emitTLRaceHotCalls("ap_", nTL, 160, 10, 12),
			emitTLRaceWarmCalls("ap_", nTL, 11),
			emitColdPairCalls("ap_", nCP, 11),
			s, spin)
	}
}
