package workloads

import "fmt"

// concrtMessagingSource generates the ConcRT Messaging test: a three-stage
// message pipeline (source -> stage -> sink) over two mutex-protected
// bounded queues, the shape of ConcRT's message-block tests. The stage and
// sink threads share two unprotected statistics counters (4 frequent static
// races); the source thread and a late configuration thread share the rare
// races (2 thread-asymmetric + 1 cold pair = 4 rare static races).
func concrtMessagingSource(scale int) string {
	s := 4000 * scale
	spin := 100000 * scale
	tlFns, tlGlobs := emitTLRaceFns("cm_", 2)
	cpFns, cpGlobs := emitColdPairFns("cm_", 0)
	scanFns, scanGlobs := emitScannerFns("cm_", s/2)

	return fmt.Sprintf(`; ConcRT messaging benchmark, scale %d
module concrt-msg
glob q1 12
glob q2 12
glob statsMsgs 1
glob statsLat 1
%s%s%s%s%s%s
; Bounded queue of 8 slots. Layout: [0]=lock word (the queue base address
; is the lock SyncVar), [1]=head, [2]=tail, [3]=count, [4..11]=ring.
func q_put 2 10 {
retry:
    lock r0
    load r2, r0, 3
    movi r3, 8
    slt r4, r2, r3
    br r4, do, full
full:
    unlock r0
    yield
    jmp retry
do:
    addi r2, r2, 1
    store r0, 3, r2
    load r5, r0, 2
    add r6, r0, r5
    store r6, 4, r1
    addi r5, r5, 1
    movi r3, 7
    and r5, r5, r3
    store r0, 2, r5
    unlock r0
    ret r1
}
func q_get 1 10 {
retry:
    lock r0
    load r2, r0, 3
    br r2, do, empty
empty:
    unlock r0
    yield
    jmp retry
do:
    addi r2, r2, -1
    store r0, 3, r2
    load r5, r0, 1
    add r6, r0, r5
    load r1, r6, 4
    addi r5, r5, 1
    movi r3, 7
    and r5, r5, r3
    store r0, 1, r5
    unlock r0
    ret r1
}

func msg_encode 2 8 {
    ; r0 = private buffer, r1 = seed; returns encoded word
    movi r2, 32
fill:
    addi r2, r2, -1
    add r3, r0, r2
    xor r4, r1, r2
    store r3, 0, r4
    br r2, fill, sum
sum:
    movi r2, 32
    movi r5, 0
sloop:
    addi r2, r2, -1
    add r3, r0, r2
    load r4, r3, 0
    add r5, r5, r4
    br r2, sloop, done
done:
    ret r5
}

func bump_msgs 0 4 {
    glob r1, statsMsgs
    load r2, r1, 0
    addi r2, r2, 1
    store r1, 0, r2
    ret r2
}
func bump_lat 1 4 {
    glob r1, statsLat
    load r2, r1, 0
    add r2, r2, r0
    store r1, 0, r2
    ret r2
}

func source 1 14 {
    movi r1, 32
    alloc r10, r1
%s%s%s    movi r9, 0
sloop:
    slt r1, r9, r0
    br r1, sbody, sdone
sbody:
    call r2, msg_encode, r10, r9
    glob r3, q1
    call _, q_put, r3, r2
    addi r9, r9, 1
    jmp sloop
sdone:
    free r10
    ret r9
}

func stage 1 12 {
    movi r1, 64
    alloc r10, r1
    movi r9, 0
tloop:
    slt r1, r9, r0
    br r1, tbody, tdone
tbody:
    glob r2, q1
    call r3, q_get, r2
    call _, msg_encode, r10, r3
    addi r3, r3, 13
    glob r4, q2
    call _, q_put, r4, r3
    call _, bump_msgs
    call _, bump_lat, r3
    addi r9, r9, 1
    jmp tloop
tdone:
    free r10
    ret r9
}

func sink 1 12 {
    movi r1, 64
    alloc r10, r1
    movi r9, 0
kloop:
    slt r1, r9, r0
    br r1, kbody, kdone
kbody:
    glob r2, q2
    call r3, q_get, r2
    call _, msg_encode, r10, r3
    call _, bump_msgs
    call _, bump_lat, r3
    addi r9, r9, 1
    jmp kloop
kdone:
    free r10
    ret r9
}

func latecfg 1 14 {
%s%s    ret r0
}

func main 0 10 {
    movi r0, %d
    fork r1, source, r0
    fork r2, stage, r0
    fork r3, sink, r0
    fork r8, cm_scanner, r0
    fork r9, cm_scanner, r0
    movi r4, %d
spin:
    addi r4, r4, -1
    br r4, spin, fks
fks:
    movi r5, 0
    fork r5, latecfg, r5
    join r1
    join r2
    join r3
    join r8
    join r9
    join r5
    glob r6, statsMsgs
    load r7, r6, 0
    print r7
    exit
}
entry main
`, scale, tlGlobs, cpGlobs, scanGlobs, tlFns, cpFns, scanFns,
		emitTLRaceWarmCalls("cm_", 2, 11),
		emitColdPairCalls("cm_", 0, 11),
		emitTLRaceHotCalls("cm_", 2, 160, 10, 12),
		emitTLRaceWarmCalls("cm_", 2, 11),
		emitColdPairCalls("cm_", 0, 11),
		s, spin)
}

// concrtSchedulingSource generates the ConcRT Explicit Scheduling test:
// four workers pulling tiny tasks from a single lock-protected dispenser.
// The critical section is a few instructions and the task body is tiny, so
// synchronization dominates — the paper's worst realistic case (2.4x
// LiteRace, 9.1x full logging).
func concrtSchedulingSource(scale int) string {
	s := 2200 * scale
	spin := 80000 * scale
	tlFns, tlGlobs := emitTLRaceFns("cs_", 2)

	return fmt.Sprintf(`; ConcRT explicit scheduling benchmark, scale %d
module concrt-sched
glob schedlock 1
glob taskctr 1
glob statsSched 1
%s%s
func sched_next 0 6 {
    glob r1, schedlock
    lock r1
    glob r2, taskctr
    load r3, r2, 0
    addi r4, r3, 1
    store r2, 0, r4
    unlock r1
    ret r3
}

func do_task 1 4 {
    movi r1, 3
    mul r2, r0, r1
    addi r2, r2, 7
    xor r2, r2, r0
    ret r2
}

func bump_sched 0 4 {
    glob r1, statsSched
    load r2, r1, 0
    addi r2, r2, 1
    store r1, 0, r2
    ret r2
}

func schedworker 1 10 {
    movi r9, 0
wloop:
    slt r1, r9, r0
    br r1, wbody, wdone
wbody:
    call r2, sched_next
    call _, do_task, r2
    call _, bump_sched
    addi r9, r9, 1
    jmp wloop
wdone:
    ret r9
}

func schedworker_first 1 14 {
    movi r1, 32
    alloc r10, r1
%s%s    call r2, schedworker, r0
    free r10
    ret r2
}

func latecfg 1 14 {
%s    ret r0
}

func main 0 10 {
    movi r0, %d
    fork r1, schedworker_first, r0
    fork r2, schedworker, r0
    fork r3, schedworker, r0
    fork r4, schedworker, r0
    movi r5, %d
spin:
    addi r5, r5, -1
    br r5, spin, fks
fks:
    movi r6, 0
    fork r6, latecfg, r6
    join r1
    join r2
    join r3
    join r4
    join r6
    glob r7, taskctr
    load r8, r7, 0
    print r8
    exit
}
entry main
`, scale, tlGlobs, tlFns,
		emitTLRaceWarmCalls("cs_", 2, 11),
		emitTLRaceHotCalls("cs_", 2, 160, 10, 12),
		emitTLRaceWarmCalls("cs_", 2, 11),
		s, spin)
}
