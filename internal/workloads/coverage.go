package workloads

import (
	"fmt"
	"strings"
)

// CoverageBenchmark returns the workload used by the coverage-accumulation
// study (the paper's §3.1 argument that a cheap detector deployed on many
// executions accumulates coverage). It is not part of the evaluated suite:
// unlike the Table 4 benchmarks, most of its races are deliberately
// *schedule-dependent*.
//
// Two scanner threads take a shared lock every 64 iterations, which
// weaves a happens-before chain between them: an access by one thread is
// ordered with everything the other does a few dozen iterations later.
// Each thread also draws a random window [T, T+W) of its iteration space
// per run (the seeded rand instruction) and writes a shared "transient"
// cell only inside that window. The pair races only when the two windows
// coincide closely enough in time that no lock chain separates the
// writes — so ground truth itself varies per seed, and the sampler needs
// a lucky burst inside the overlap on both sides to see it.
func CoverageBenchmark() Benchmark {
	return Benchmark{
		Key:          "coverage",
		Name:         "Coverage Study",
		Description:  "Schedule-dependent transient races for the multi-run coverage study",
		DefaultScale: 1,
		source:       coverageSource,
	}
}

const (
	coverageProbes = 6
	coverageWindow = 300
)

func coverageSource(scale int) string {
	s := 3000 * scale

	var probes, probeGlobs, probeCalls, drawWindows strings.Builder
	for i := 0; i < coverageProbes; i++ {
		fmt.Fprintf(&probeGlobs, "glob cv_trans%d 1\n", i)
		fmt.Fprintf(&probes, `
func cv_probe%d 2 6 {
    ; r0 = iteration, r1 = this thread's window start
    slt r2, r0, r1
    br r2, skip, lower
lower:
    addi r3, r1, %d
    slt r2, r0, r3
    br r2, do, skip
do:
    glob r4, cv_trans%d
    store r4, 0, r0
skip:
    ret r0
}
`, i, coverageWindow, i)
		fmt.Fprintf(&drawWindows, "    rand r2, r1\n    store r10, %d, r2\n", i)
		fmt.Fprintf(&probeCalls, "    load r3, r10, %d\n    call _, cv_probe%d, r9, r3\n", i, i)
	}

	return fmt.Sprintf(`; coverage-study workload, scale %d
module coverage
glob statsOps 1
glob weavelock 1
glob weavectr 1
%s
func bump_ops 0 4 {
    ; deterministic frequent race: both scanners, every iteration
    glob r1, statsOps
    load r2, r1, 0
    addi r2, r2, 1
    store r1, 0, r2
    ret r2
}

func weave_sync 1 6 {
    ; every 64th iteration both threads pass through one lock, creating
    ; the happens-before chains that make the transient races timing-
    ; sensitive
    movi r1, 63
    and r2, r0, r1
    br r2, skip, do
do:
    glob r3, weavelock
    lock r3
    glob r4, weavectr
    load r5, r4, 0
    addi r5, r5, 1
    store r4, 0, r5
    unlock r3
skip:
    ret r0
}

func churn 2 8 {
    movi r2, 16
fl:
    addi r2, r2, -1
    add r3, r0, r2
    xor r4, r1, r2
    store r3, 0, r4
    br r2, fl, sm
sm:
    movi r2, 16
    movi r5, 0
sl:
    addi r2, r2, -1
    add r3, r0, r2
    load r4, r3, 0
    add r5, r5, r4
    br r2, sl, done
done:
    ret r5
}
%s
func scanner 1 12 {
    ; r0 = iterations; draw this run's probe windows into a stack array,
    ; then scan.
    salloc r10, %d
    mov r1, r0
%s    movi r2, 32
    alloc r11, r2
    movi r9, 0
loop:
    slt r1, r9, r0
    br r1, body, done
body:
    call _, churn, r11, r9
    call _, bump_ops
    call _, weave_sync, r9
%s    addi r9, r9, 1
    jmp loop
done:
    free r11
    ret r9
}

func main 0 8 {
    movi r0, %d
    fork r1, scanner, r0
    fork r2, scanner, r0
    join r1
    join r2
    glob r3, statsOps
    load r4, r3, 0
    print r4
    exit
}
entry main
`, scale, probeGlobs.String(), probes.String(),
		coverageProbes, drawWindows.String(), probeCalls.String(), s)
}
