package workloads

import (
	"fmt"
	"strings"
)

// dryadSource generates the Dryad shared-memory channel benchmark: a
// producer and a consumer moving checksummed payload blocks through a
// mutex-protected ring buffer (the channel library Dryad uses between
// computing nodes), plus a late-starting configuration thread that
// triggers the rare races.
//
// The stdlib variant statically links the "standard library": payload
// processing goes through std_* utility functions, ~120 additional cold
// utility functions are linked in, and most planted races live behind
// stdlib wrappers — reproducing Table 4's jump from 8 races (3 rare) to
// 19 races (17 rare) when the standard library is instrumented too.
func dryadSource(stdlib bool) func(scale int) string {
	return func(scale int) string {
		s := 4000 * scale
		heat := 160
		spin := 120000 * scale

		// Rare static races: nTL thread-asymmetric + 2*nCP cold-cold + 1
		// hot-hot (the scanner pair) = 3 for plain dryad, 17 for +stdlib,
		// matching Table 4.
		prefix := "dry_"
		nTL, nCP := 2, 0
		if stdlib {
			prefix = "std_"
			nTL, nCP = 10, 3
		}

		tlFns, tlGlobs := emitTLRaceFns(prefix, nTL)
		cpFns, cpGlobs := emitColdPairFns(prefix, nCP)
		scanFns, scanGlobs := emitScannerFns(prefix, s/2)

		payloadSet, payloadSum := "ch_fill", "ch_sum"
		var extra string
		if stdlib {
			payloadSet, payloadSum = "std_memset", "std_checksum"
			extra = stdlibFns(120)
		} else {
			extra = `
func ch_fill 3 6 {
loop:
    br r2, body, done
body:
    addi r2, r2, -1
    add r3, r0, r2
    store r3, 0, r1
    jmp loop
done:
    ret r0
}
func ch_sum 2 8 {
    movi r2, 0
loop:
    br r1, body, done
body:
    addi r1, r1, -1
    add r3, r0, r1
    load r4, r3, 0
    add r2, r2, r4
    jmp loop
done:
    ret r2
}
`
		}

		// Frequent races: the plain variant has two racy stats counters
		// plus a modulo-K hot race (5 static); the stdlib variant only the
		// ops counter (2 static).
		freq := `
glob statsOps 1
func bump_ops 0 4 {
    glob r1, statsOps
    load r2, r1, 0
    addi r2, r2, 1
    store r1, 0, r2
    ret r2
}
`
		pokeCalls := ""
		if !stdlib {
			freq += `
glob statsBytes 1
glob hotPoke 1
func bump_bytes 1 4 {
    glob r1, statsBytes
    load r2, r1, 0
    add r2, r2, r0
    store r1, 0, r2
    ret r2
}
func maybe_poke 1 4 {
    movi r1, 8
    mod r2, r0, r1
    br r2, skip, do
do:
    glob r3, hotPoke
    store r3, 0, r0
skip:
    ret r0
}
`
			pokeCalls = `
    call _, bump_bytes, r3
    call _, maybe_poke, r9
`
		}

		var b strings.Builder
		fmt.Fprintf(&b, `; Dryad channel benchmark (stdlib=%v), scale %d
module dryad
glob ring 16
glob head 1
glob tail 1
glob cnt 1
glob chlock 1
glob cfgTable 8
%s%s%s%s%s%s%s`, stdlib, scale, tlGlobs, cpGlobs, scanGlobs, freq, tlFns, cpFns, scanFns)

		b.WriteString(extra)

		fmt.Fprintf(&b, `
func chan_init 0 6 {
    glob r0, head
    movi r1, 0
    store r0, 0, r1
    glob r0, tail
    store r0, 0, r1
    glob r0, cnt
    store r0, 0, r1
    glob r2, cfgTable
    movi r3, 8
    movi r4, 7
    call _, %s, r2, r4, r3
    ret r1
}

func chan_send 1 8 {
retry:
    glob r1, chlock
    lock r1
    glob r2, cnt
    load r3, r2, 0
    movi r4, 16
    slt r5, r3, r4
    br r5, do, full
full:
    unlock r1
    yield
    jmp retry
do:
    addi r3, r3, 1
    store r2, 0, r3
    glob r4, tail
    load r5, r4, 0
    glob r6, ring
    add r7, r6, r5
    store r7, 0, r0
    addi r5, r5, 1
    movi r6, 15
    and r5, r5, r6
    store r4, 0, r5
    unlock r1
    ret r0
}

func chan_recv 0 8 {
retry:
    glob r1, chlock
    lock r1
    glob r2, cnt
    load r3, r2, 0
    br r3, do, empty
empty:
    unlock r1
    yield
    jmp retry
do:
    addi r3, r3, -1
    store r2, 0, r3
    glob r4, head
    load r5, r4, 0
    glob r6, ring
    add r7, r6, r5
    load r0, r7, 0
    addi r5, r5, 1
    movi r6, 15
    and r5, r5, r6
    store r4, 0, r5
    unlock r1
    ret r0
}

func producer 1 14 {
    movi r1, 64
    alloc r10, r1
%s%s%s    movi r9, 0
ploop:
    slt r1, r9, r0
    br r1, pbody, pdone
pbody:
    movi r2, 48
    call _, %s, r10, r9, r2
    call r3, %s, r10, r2
    call _, chan_send, r3
    call _, bump_ops
%s    addi r9, r9, 1
    jmp ploop
pdone:
    free r10
    ret r9
}

func consumer 1 14 {
    movi r1, 64
    alloc r10, r1
    movi r9, 0
cloop:
    slt r1, r9, r0
    br r1, cbody, cdone
cbody:
    call r3, chan_recv
    movi r2, 48
    call _, %s, r10, r3, r2
    call r4, %s, r10, r2
    call _, bump_ops
%s    addi r9, r9, 1
    jmp cloop
cdone:
    free r10
    ret r9
}

func latecfg 1 14 {
%s%s    ret r0
}

func report 0 6 {
    glob r1, statsOps
    load r2, r1, 0
    ret r2
}

func main 0 10 {
    call _, chan_init
    movi r0, %d
    fork r1, producer, r0
    fork r2, consumer, r0
    fork r8, %sscanner, r0
    fork r9, %sscanner, r0
    movi r3, %d
spin:
    addi r3, r3, -1
    br r3, spin, fks
fks:
    movi r4, 0
    fork r4, latecfg, r4
    join r1
    join r2
    join r8
    join r9
    join r4
    call r5, report
    print r5
    exit
}
entry main
`,
			payloadSet,
			emitTLRaceWarmCalls(prefix, nTL, 11),
			emitColdPairCalls(prefix, nCP, 11),
			emitTLRaceHotCalls(prefix, nTL, heat, 10, 12),
			payloadSet, payloadSum, pokeCalls,
			payloadSet, payloadSum, pokeCalls,
			emitTLRaceWarmCalls(prefix, nTL, 11),
			emitColdPairCalls(prefix, nCP, 11),
			s, prefix, prefix, spin)
		return b.String()
	}
}
