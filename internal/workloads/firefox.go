package workloads

import (
	"fmt"
	"strings"
)

// firefoxStartSource generates the browser start-up benchmark: the main
// thread runs a long sequence of one-shot module initializers (cold code
// dominates, as in a real browser start) while an icon-cache worker and a
// chrome worker run small hot loops. A late-started session-restore thread
// triggers the rare races. Start-up is short, so instrumented cold code is
// a comparatively large fraction of execution — reproducing the paper's
// mid-range overhead for Firefox-Start (1.44x).
func firefoxStartSource(scale int) string {
	s := 4000 * scale
	spin := 90000 * scale
	nInit := 200       // generated initializers (Table 2 function count)
	nInitCalled := 160 // how many start-up actually runs

	tlFns, tlGlobs := emitTLRaceFns("ff_", 4)
	cpFns, cpGlobs := emitColdPairFns("ff_", 0)
	scanFns, scanGlobs := emitScannerFns("ff_", s/2)

	var inits, initCalls strings.Builder
	for i := 0; i < nInit; i++ {
		fmt.Fprintf(&inits, `
func ff_init%d 0 6 {
    salloc r1, 4
    movi r2, %d
    store r1, 0, r2
    load r3, r1, 0
    addi r3, r3, %d
    store r1, 1, r3
    ret r3
}
`, i, i*3+1, i)
	}
	for i := 0; i < nInitCalled; i++ {
		fmt.Fprintf(&initCalls, "    call _, ff_init%d\n", i)
	}

	return fmt.Sprintf(`; Firefox start-up benchmark, scale %d
module firefox-start
glob statsCache 1
glob statsLayout 1
glob statsEvents 1
glob ffpoke 1
glob uilock 1
glob uistate 1
%s%s%s
func bump_cache 0 4 {
    glob r1, statsCache
    load r2, r1, 0
    addi r2, r2, 1
    store r1, 0, r2
    ret r2
}
func bump_layout 0 4 {
    glob r1, statsLayout
    load r2, r1, 0
    addi r2, r2, 1
    store r1, 0, r2
    ret r2
}
func bump_events 1 4 {
    glob r1, statsEvents
    load r2, r1, 0
    add r2, r2, r0
    store r1, 0, r2
    ret r2
}
func ui_update 1 6 {
    movi r1, 16
    mod r2, r0, r1
    br r2, skip, do
do:
    glob r3, uilock
    lock r3
    glob r4, uistate
    load r5, r4, 0
    addi r5, r5, 1
    store r4, 0, r5
    unlock r3
skip:
    ret r0
}
func ff_maybe_poke 1 4 {
    movi r1, 7
    mod r2, r0, r1
    br r2, skip, do
do:
    glob r3, ffpoke
    store r3, 0, r0
skip:
    ret r0
}
%s%s
func icon_render 2 8 {
    ; r0 = private buffer, r1 = icon id
    movi r2, 32
fill:
    addi r2, r2, -1
    add r3, r0, r2
    xor r4, r1, r2
    store r3, 0, r4
    br r2, fill, blend
blend:
    movi r2, 32
    movi r5, 0
bl:
    addi r2, r2, -1
    add r3, r0, r2
    load r4, r3, 0
    add r5, r5, r4
    br r2, bl, done
done:
    ret r5
}

func iconworker 1 14 {
    movi r1, 32
    alloc r10, r1
%s%s%s    movi r9, 0
iloop:
    slt r1, r9, r0
    br r1, ibody, idone
ibody:
    call r2, icon_render, r10, r9
    call _, bump_cache
    call _, bump_layout
    call _, bump_events, r2
    call _, ff_maybe_poke, r9
    call _, ui_update, r9
    addi r9, r9, 1
    jmp iloop
idone:
    free r10
    ret r9
}

func chromeworker 1 14 {
    movi r1, 32
    alloc r10, r1
    movi r9, 0
cloop:
    slt r1, r9, r0
    br r1, cbody, cdone
cbody:
    call r2, icon_render, r10, r9
    call _, bump_cache
    call _, bump_layout
    call _, bump_events, r2
    call _, ff_maybe_poke, r9
    call _, ui_update, r9
    addi r9, r9, 1
    jmp cloop
cdone:
    free r10
    ret r9
}

func restore_thread 1 14 {
%s%s    ret r0
}
%s%s
func main 0 10 {
    movi r0, %d
    fork r1, iconworker, r0
    fork r2, chromeworker, r0
    fork r8, ff_scanner, r0
    fork r9, ff_scanner, r0
%s    movi r4, %d
spin:
    addi r4, r4, -1
    br r4, spin, fks
fks:
    movi r5, 0
    fork r5, restore_thread, r5
    join r1
    join r2
    join r8
    join r9
    join r5
    glob r6, statsCache
    load r7, r6, 0
    print r7
    exit
}
entry main
`, scale,
		tlGlobs, cpGlobs, scanGlobs,
		tlFns, cpFns,
		emitTLRaceWarmCalls("ff_", 4, 11),
		emitColdPairCalls("ff_", 0, 11),
		emitTLRaceHotCalls("ff_", 4, 160, 10, 12),
		emitTLRaceWarmCalls("ff_", 4, 11),
		emitColdPairCalls("ff_", 0, 11),
		inits.String(), scanFns,
		s, initCalls.String(), spin)
}

// firefoxRenderSource generates the rendering benchmark: a layout thread
// resolves style and lays out 2500 positioned DIVs per pass while a
// compositor thread blends frames; both hammer private buffers (the
// highest memory-access density of the suite, which is why full logging
// costs 33x on the real Firefox-Render) and share three unprotected paint
// statistics counters. A late script thread provides the rare races.
func firefoxRenderSource(scale int) string {
	divs := 4000 * scale
	spin := 130000 * scale
	tlFns, tlGlobs := emitTLRaceFns("fr_", 7)
	cpFns, cpGlobs := emitColdPairFns("fr_", 1)
	scanFns, scanGlobs := emitScannerFns("fr_", divs/2)

	return fmt.Sprintf(`; Firefox render benchmark, scale %d
module firefox-render
glob statsFrames 1
glob statsPaint 1
glob statsDirty 1
glob domlock 1
glob domstate 1
%s%s%s
func bump_frames 0 4 {
    glob r1, statsFrames
    load r2, r1, 0
    addi r2, r2, 1
    store r1, 0, r2
    ret r2
}
func bump_paint 1 4 {
    glob r1, statsPaint
    load r2, r1, 0
    add r2, r2, r0
    store r1, 0, r2
    ret r2
}
func bump_dirty 0 4 {
    glob r1, statsDirty
    load r2, r1, 0
    addi r2, r2, 1
    store r1, 0, r2
    ret r2
}
%s%s
func dom_update 1 6 {
    movi r1, 16
    mod r2, r0, r1
    br r2, skip, do
do:
    glob r3, domlock
    lock r3
    glob r4, domstate
    load r5, r4, 0
    addi r5, r5, 1
    store r4, 0, r5
    unlock r3
skip:
    ret r0
}
func style_resolve 2 8 {
    ; r0 = div buffer, r1 = div id
    movi r2, 32
sl:
    addi r2, r2, -1
    add r3, r0, r2
    mul r4, r1, r2
    addi r4, r4, 5
    store r3, 0, r4
    br r2, sl, done
done:
    ret r1
}
func layout_div 2 8 {
    movi r2, 32
    movi r5, 0
ll:
    addi r2, r2, -1
    add r3, r0, r2
    load r4, r3, 0
    add r5, r5, r4
    store r3, 0, r5
    br r2, ll, done
done:
    ret r5
}
func comp_blend 2 8 {
    movi r2, 48
bl:
    addi r2, r2, -1
    add r3, r0, r2
    load r4, r3, 0
    xor r4, r4, r1
    store r3, 0, r4
    br r2, bl, done
done:
    ret r1
}

func layoutthread 1 14 {
    movi r1, 32
    alloc r10, r1
%s%s%s    movi r9, 0
lloop:
    slt r1, r9, r0
    br r1, lbody, ldone
lbody:
    call _, style_resolve, r10, r9
    call r2, layout_div, r10, r9
    call _, bump_frames
    call _, bump_paint, r2
    call _, bump_dirty
    call _, dom_update, r9
    addi r9, r9, 1
    jmp lloop
ldone:
    free r10
    ret r9
}

func compositor 1 14 {
    movi r1, 64
    alloc r10, r1
    movi r9, 0
ploop:
    slt r1, r9, r0
    br r1, pbody, pdone
pbody:
    call _, comp_blend, r10, r9
    call _, bump_frames
    call _, bump_paint, r9
    call _, bump_dirty
    call _, dom_update, r9
    addi r9, r9, 1
    jmp ploop
pdone:
    free r10
    ret r9
}

func script_thread 1 14 {
%s%s    ret r0
}
%s
func main 0 10 {
    movi r0, %d
    fork r1, layoutthread, r0
    fork r2, compositor, r0
    fork r8, fr_scanner, r0
    fork r9, fr_scanner, r0
    movi r4, %d
spin:
    addi r4, r4, -1
    br r4, spin, fks
fks:
    movi r5, 0
    fork r5, script_thread, r5
    join r1
    join r2
    join r8
    join r9
    join r5
    glob r6, statsFrames
    load r7, r6, 0
    print r7
    exit
}
entry main
`, scale,
		tlGlobs, cpGlobs, scanGlobs,
		tlFns, cpFns,
		emitTLRaceWarmCalls("fr_", 7, 11),
		emitColdPairCalls("fr_", 1, 11),
		emitTLRaceHotCalls("fr_", 7, 160, 10, 12),
		emitTLRaceWarmCalls("fr_", 7, 11),
		emitColdPairCalls("fr_", 1, 11),
		scanFns, divs, spin)
}
