package workloads

import "fmt"

// LoopKernelSource generates the Parsec-style compute kernel used by the
// loop-granularity-sampling ablation (the paper's §7 future work):
// each worker thread is one function whose body is a single high-trip-count
// self-loop over a private buffer. Function-granularity sampling is
// pathological here — the function runs once per thread, so it is cold,
// gets sampled, and its entire multi-hundred-thousand-access loop is
// logged. Loop-granularity sampling re-checks at the back edge and stops
// logging once the loop is hot.
//
// One cold-path race is planted before the loop (each worker writes the
// shared cfg word) to verify that loop sampling does not lose cold-code
// coverage.
func LoopKernelSource(scale int) string {
	iters := 150_000 * scale
	return fmt.Sprintf(`; Parsec-style loop kernel, scale %d
module loop-kernel
glob cfg 1

func kernel 1 12 {
    glob r1, cfg
    store r1, 0, r0      ; racy one-shot write, before the hot loop
    movi r2, 2048
    alloc r8, r2
    movi r9, %d
loop:
    movi r3, 2047
    and r4, r9, r3
    add r5, r8, r4
    load r6, r5, 0
    add r6, r6, r9
    store r5, 0, r6
    addi r9, r9, -1
    br r9, loop, done
done:
    free r8
    ret r9
}

func main 0 8 {
    movi r0, 1
    fork r1, kernel, r0
    movi r0, 2
    fork r2, kernel, r0
    join r1
    join r2
    exit
}
entry main
`, scale, iters)
}
