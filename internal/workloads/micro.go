package workloads

import "fmt"

// lkrHashSource generates the LKRHash microbenchmark: four threads
// hammering a hash table that combines lock-free techniques (per-bucket
// CAS spinlocks, atomic size counter) with tiny critical sections. Nearly
// every instruction neighbours a synchronization operation, so sync
// logging — which LiteRace can never sample away — dominates the overhead
// (2.4x LiteRace, 14.7x full logging in the paper).
func lkrHashSource(scale int) string {
	s := 3000 * scale
	return fmt.Sprintf(`; LKRHash microbenchmark, scale %d
module lkrhash
glob buckets 64
glob bucketlocks 64
glob tabsize 1

func hash_key 1 6 {
    movi r1, 2654435761
    mul r2, r0, r1
    movi r3, 63
    and r2, r2, r3
    ret r2
}

func mix_key 2 8 {
    ; r0 = private buffer, r1 = key: hash-mix 16 words (the real LKRHash
    ; computes full hashes and compares keys between its atomic operations)
    movi r2, 16
fill:
    addi r2, r2, -1
    add r3, r0, r2
    mul r4, r1, r2
    addi r4, r4, 97
    store r3, 0, r4
    br r2, fill, sum
sum:
    movi r2, 16
    movi r5, 0
sl:
    addi r2, r2, -1
    add r3, r0, r2
    load r4, r3, 0
    xor r5, r5, r4
    br r2, sl, done
done:
    ret r5
}

func hash_put 2 12 {
    ; r0 = key, r1 = value
    call r2, hash_key, r0
    glob r3, bucketlocks
    add r3, r3, r2
    movi r4, 0
    movi r5, 1
spin:
    cas r6, r3, r4, r5
    br r6, spin, own
own:
    glob r7, buckets
    add r7, r7, r2
    store r7, 0, r1
    movi r4, 0
    xchg r6, r3, r4
    glob r8, tabsize
    movi r9, 1
    xadd r6, r8, r9
    ret r2
}

func hash_get 1 12 {
    call r2, hash_key, r0
    glob r3, bucketlocks
    add r3, r3, r2
    movi r4, 0
    movi r5, 1
spin:
    cas r6, r3, r4, r5
    br r6, spin, own
own:
    glob r7, buckets
    add r7, r7, r2
    load r1, r7, 0
    movi r4, 0
    xchg r6, r3, r4
    ret r1
}

func hashworker 1 12 {
    movi r1, 32
    alloc r10, r1
    movi r9, 0
loop:
    slt r1, r9, r0
    br r1, body, done
body:
    add r2, r9, r0
    call r3, mix_key, r10, r2
    call _, hash_put, r2, r3
    call _, hash_get, r2
    addi r9, r9, 1
    jmp loop
done:
    free r10
    ret r9
}

func main 0 10 {
    movi r0, %d
    fork r1, hashworker, r0
    fork r2, hashworker, r0
    fork r3, hashworker, r0
    call _, hashworker, r0
    join r1
    join r2
    join r3
    glob r4, tabsize
    load r5, r4, 0
    print r5
    exit
}
entry main
`, scale, s)
}

// lfListSource generates the LFList microbenchmark: a lock-free Treiber
// stack (the paper's lock-free linked list) with CAS push/pop retry loops
// and a heap allocation per push. Allocation is synchronization too
// (§4.3), so this is the densest sync workload in the suite. Nodes are
// not freed during the run: safe memory reclamation for lock-free
// structures (epochs/hazard pointers) is out of scope, exactly as the
// original benchmark leaked to sidestep ABA.
func lfListSource(scale int) string {
	s := 1500 * scale
	return fmt.Sprintf(`; LFList microbenchmark, scale %d
module lflist
glob lfhead 1
glob opcount 1

func lf_push 1 8 {
    movi r1, 2
    alloc r2, r1
    store r2, 0, r0
    glob r3, lfhead
retry:
    load r4, r3, 0
    store r2, 1, r4
    cas r5, r3, r4, r2
    seq r6, r5, r4
    br r6, done, retry
done:
    movi r7, 1
    glob r6, opcount
    xadd r1, r6, r7
    ret r2
}

func lf_pop 0 8 {
    glob r3, lfhead
retry:
    load r4, r3, 0
    br r4, go, emptyv
emptyv:
    movi r0, -1
    ret r0
go:
    load r5, r4, 1
    cas r6, r3, r4, r5
    seq r7, r6, r4
    br r7, done, retry
done:
    load r0, r4, 0
    ret r0
}

func fill_payload 2 8 {
    ; r0 = private buffer, r1 = seed: prepare a 12-word payload
    movi r2, 12
fl:
    addi r2, r2, -1
    add r3, r0, r2
    xor r4, r1, r2
    store r3, 0, r4
    br r2, fl, sm
sm:
    movi r2, 12
    movi r5, 0
sl:
    addi r2, r2, -1
    add r3, r0, r2
    load r4, r3, 0
    add r5, r5, r4
    br r2, sl, done
done:
    ret r5
}

func listworker 1 12 {
    movi r1, 32
    alloc r10, r1
    movi r9, 0
loop:
    slt r1, r9, r0
    br r1, body, done
body:
    call r2, fill_payload, r10, r9
    call _, lf_push, r2
    call _, lf_pop
    addi r9, r9, 1
    jmp loop
done:
    free r10
    ret r9
}

func main 0 10 {
    movi r0, %d
    fork r1, listworker, r0
    fork r2, listworker, r0
    fork r3, listworker, r0
    call _, listworker, r0
    join r1
    join r2
    join r3
    glob r4, opcount
    load r5, r4, 0
    print r5
    exit
}
entry main
`, scale, s)
}
