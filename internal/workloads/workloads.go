// Package workloads provides the benchmark programs of the evaluation
// (§5.1, Table 2): synthetic LIR equivalents of Dryad's channel library
// (with and without a statically linked standard library), the ConcRT
// messaging and explicit-scheduling tests, two Apache request mixes, the
// Firefox start-up and render scenarios, and the LKRHash / LFList
// synchronization microbenchmarks.
//
// Each program reproduces the *shape* that matters to a sampling race
// detector: the mix of hot and cold functions, the thread structure, the
// synchronization density, and a planted population of data races whose
// rare/frequent split follows Table 4. Three race constructions are used:
//
//   - Thread-asymmetric rare races ("tlrace"): a function F is made hot by
//     thread A (thousands of calls on private data) after A's first call
//     performed a racy access to shared data; a late-started thread B
//     calls F once on the same shared data. Detecting the race needs both
//     cold executions sampled — exactly what thread-local sampling
//     provides and global sampling loses (§3.4).
//   - Cold-cold rare races ("coldpair"): a function executed once by each
//     of two threads; any sampler that samples cold code finds these.
//   - Hot-path frequent races ("stats" and modulo-K races): unprotected
//     counters updated in hot loops; found by nearly every sampler, and
//     the modulo-K variants occur just often (or rarely) enough to sit on
//     either side of the Table 4 threshold.
//
// The racy accesses deliberately occur before their thread's first use of
// any shared lock, so no accidental release/acquire chain orders them.
package workloads

import (
	"fmt"
	"strings"

	"literace/internal/asm"
	"literace/internal/lir"
)

// Benchmark is one benchmark-input pair.
type Benchmark struct {
	// Key is the short identifier used on the command line.
	Key string
	// Name is the display name used in the paper's tables.
	Name string
	// Description matches Table 2's description column.
	Description string
	// InTable4 reports whether the paper's Table 4 includes this
	// benchmark (ConcRT is evaluated in Figures 4-6 but not Table 4).
	InTable4 bool
	// Micro marks the synchronization microbenchmarks, which appear only
	// in the overhead study (Table 5, Figure 6).
	Micro bool
	// DefaultScale is the work multiplier used by the harness.
	DefaultScale int
	// source generates the LIR assembly at a given scale.
	source func(scale int) string
}

// Source returns the program text at the given scale (0 = default).
func (b Benchmark) Source(scale int) string {
	if scale <= 0 {
		scale = b.DefaultScale
	}
	return b.source(scale)
}

// Module assembles the benchmark at the given scale (0 = default).
func (b Benchmark) Module(scale int) (*lir.Module, error) {
	m, err := asm.Assemble(b.Key, b.Source(scale))
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", b.Key, err)
	}
	return m, nil
}

// All returns every benchmark in the paper's presentation order.
func All() []Benchmark {
	return []Benchmark{
		{
			Key: "dryad-stdlib", Name: "Dryad Channel + stdlib",
			Description: "Shared-memory channel library with the standard library statically linked in",
			InTable4:    true, DefaultScale: 1, source: dryadSource(true),
		},
		{
			Key: "dryad", Name: "Dryad Channel",
			Description: "Shared-memory channel library for distributed data-parallel apps",
			InTable4:    true, DefaultScale: 1, source: dryadSource(false),
		},
		{
			Key: "concrt-msg", Name: "ConcRT Messaging",
			Description:  "Concurrency runtime message-passing test",
			DefaultScale: 1, source: concrtMessagingSource,
		},
		{
			Key: "concrt-sched", Name: "ConcRT Explicit Scheduling",
			Description:  "Concurrency runtime explicit-scheduling test (synchronization heavy)",
			DefaultScale: 1, source: concrtSchedulingSource,
		},
		{
			Key: "apache-1", Name: "Apache-1",
			Description: "Web server: mixed small/large/CGI request workload",
			InTable4:    true, DefaultScale: 1, source: apacheSource(1),
		},
		{
			Key: "apache-2", Name: "Apache-2",
			Description: "Web server: small static page workload",
			InTable4:    true, DefaultScale: 1, source: apacheSource(2),
		},
		{
			Key: "firefox-start", Name: "Firefox Start",
			Description: "Browser start-up: one-shot initialization of many modules",
			InTable4:    true, DefaultScale: 1, source: firefoxStartSource,
		},
		{
			Key: "firefox-render", Name: "Firefox Render",
			Description: "Browser rendering an HTML page of 2500 positioned DIVs",
			InTable4:    true, DefaultScale: 1, source: firefoxRenderSource,
		},
		{
			Key: "lkrhash", Name: "LKRHash",
			Description: "Lock-free/hybrid hash table microbenchmark",
			Micro:       true, DefaultScale: 1, source: lkrHashSource,
		},
		{
			Key: "lflist", Name: "LFList",
			Description: "Lock-free linked list microbenchmark",
			Micro:       true, DefaultScale: 1, source: lfListSource,
		},
	}
}

// Evaluated returns the nine benchmark-input pairs of the sampler study
// (Figures 4-5 and Table 3) — everything except the microbenchmarks.
func Evaluated() []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if !b.Micro {
			out = append(out, b)
		}
	}
	return out
}

// ByKey returns the benchmark with the given key.
func ByKey(key string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Key == key {
			return b, true
		}
	}
	return Benchmark{}, false
}

// ---------------------------------------------------------------------------
// Shared generator fragments.

// emitTLRaceFns emits n thread-asymmetric race functions. tlrace<i> stores
// a value through its pointer argument; the shared target global is
// tlshared<i>. Returns (functions text, globals text).
func emitTLRaceFns(prefix string, n int) (fns, globs string) {
	var f, g strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g, "glob %stlshared%d 1\n", prefix, i)
		fmt.Fprintf(&f, `
func %stlrace%d 1 4 {
    movi r1, %d
    store r0, 0, r1
    ret r1
}
`, prefix, i, i+1)
	}
	return f.String(), g.String()
}

// emitTLRaceWarmCalls returns code calling each tlrace function once with
// its shared global: the "first, racy execution". reg names a scratch
// register pair (r<reg>, r<reg+1>) that must be free.
func emitTLRaceWarmCalls(prefix string, n int, reg int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    glob r%d, %stlshared%d\n    call _, %stlrace%d, r%d\n", reg, prefix, i, prefix, i, reg)
	}
	return b.String()
}

// emitTLRaceHotCalls returns a loop that heats every tlrace function using
// a private heap buffer whose address is in r<bufReg>. iters is the shared
// base call count; each function additionally gets 11*i+3 extra calls so
// global call counts differ per function — real hot functions do not all
// share one execution count, and a global fixed-rate sampler's burst
// windows then catch a realistic ~10% of the late cold-thread calls
// instead of deterministically hitting all or none of them. Registers
// r<reg>..r<reg+2> are scratch.
func emitTLRaceHotCalls(prefix string, n, iters, bufReg, reg int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "    movi r%d, %d\n%sheat:\n", reg, iters, prefix)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    addi r%d, r%d, %d\n    call _, %stlrace%d, r%d\n", reg+1, bufReg, i, prefix, i, reg+1)
	}
	fmt.Fprintf(&b, "    addi r%d, r%d, -1\n    br r%d, %sheat, %sheatdone\n%sheatdone:\n", reg, reg, reg, prefix, prefix, prefix)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    movi r%d, %d\n%shx%d:\n    br r%d, %shb%d, %shd%d\n%shb%d:\n", reg, 11*i+3, prefix, i, reg, prefix, i, prefix, i, prefix, i)
		fmt.Fprintf(&b, "    addi r%d, r%d, %d\n    call _, %stlrace%d, r%d\n", reg+1, bufReg, i, prefix, i, reg+1)
		fmt.Fprintf(&b, "    addi r%d, r%d, -1\n    jmp %shx%d\n%shd%d:\n", reg, reg, prefix, i, prefix, i)
	}
	return b.String()
}

// emitColdPairFns emits n cold-cold race functions plus their globals.
func emitColdPairFns(prefix string, n int) (fns, globs string) {
	var f, g strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g, "glob %scoldshared%d 1\n", prefix, i)
		fmt.Fprintf(&f, `
func %scoldpair%d 1 4 {
    load r1, r0, 0
    addi r1, r1, 1
    store r0, 0, r1
    ret r1
}
`, prefix, i)
	}
	return f.String(), g.String()
}

// emitColdPairCalls returns code calling each coldpair function once.
func emitColdPairCalls(prefix string, n, reg int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    glob r%d, %scoldshared%d\n    call _, %scoldpair%d, r%d\n", reg, prefix, i, prefix, i, reg)
	}
	return b.String()
}

// emitScannerFns emits a pair of synchronization-free scanner threads and
// a hot-hot rare race: <prefix>hh_probe is called on every scanner
// iteration (so the function is hot in both threads) but touches the
// shared global only when the iteration counter hits trigger — one access
// per thread, mid-run, while the function is hot everywhere. This is the
// race class the paper says adaptive sampling finds "some, but not all"
// of: only a sampler still logging hot code (UCP, or a lucky burst)
// catches it. The scanners never synchronize with anything between fork
// and join, so the two accesses are unordered by construction.
func emitScannerFns(prefix string, trigger int) (fns, globs string) {
	globs = fmt.Sprintf("glob %shhshared 1\n", prefix)
	fns = fmt.Sprintf(`
func %shh_probe 1 4 {
    movi r1, %d
    seq r2, r0, r1
    br r2, do, skip
do:
    glob r3, %shhshared
    store r3, 0, r0
skip:
    ret r0
}
func %sscan_work 2 8 {
    movi r2, 8
fill:
    addi r2, r2, -1
    add r3, r0, r2
    xor r4, r1, r2
    store r3, 0, r4
    br r2, fill, sum
sum:
    movi r2, 8
    movi r5, 0
sl:
    addi r2, r2, -1
    add r3, r0, r2
    load r4, r3, 0
    add r5, r5, r4
    br r2, sl, done
done:
    ret r5
}
func %sscanner 1 12 {
    movi r1, 32
    alloc r10, r1
    movi r9, 0
loop:
    slt r1, r9, r0
    br r1, body, done
body:
    call _, %sscan_work, r10, r9
    call _, %shh_probe, r9
    addi r9, r9, 1
    jmp loop
done:
    free r10
    ret r9
}
`, prefix, trigger, prefix, prefix, prefix, prefix, prefix)
	return fns, globs
}

// stdlibFns generates a small "statically linked standard library": utility
// functions operating on word buffers. count controls how many extra cold
// utility variants are emitted (Table 2: linking the stdlib raises the
// function count substantially; most of those functions are cold).
func stdlibFns(count int) string {
	var b strings.Builder
	b.WriteString(`
; ---- stdlib: hot buffer utilities ----
func std_memset 3 6 {
    ; r0 = dst, r1 = value, r2 = words
loop:
    br r2, body, done
body:
    addi r2, r2, -1
    add r3, r0, r2
    store r3, 0, r1
    jmp loop
done:
    ret r0
}
func std_memcpy 3 8 {
    ; r0 = dst, r1 = src, r2 = words
loop:
    br r2, body, done
body:
    addi r2, r2, -1
    add r3, r1, r2
    load r4, r3, 0
    add r5, r0, r2
    store r5, 0, r4
    jmp loop
done:
    ret r0
}
func std_checksum 2 8 {
    ; r0 = buf, r1 = words -> sum
    movi r2, 0
loop:
    br r1, body, done
body:
    addi r1, r1, -1
    add r3, r0, r1
    load r4, r3, 0
    add r2, r2, r4
    jmp loop
done:
    ret r2
}
`)
	for i := 0; i < count; i++ {
		// Cold utility variants: simple scalar helpers, most never called.
		fmt.Fprintf(&b, `
func std_util%d 1 4 {
    addi r1, r0, %d
    movi r2, 3
    mul r1, r1, r2
    ret r1
}
`, i, i)
	}
	return b.String()
}
