package workloads

import (
	"bytes"
	"testing"

	"literace/internal/core"
	"literace/internal/hb"
	"literace/internal/instrument"
	"literace/internal/interp"
	"literace/internal/race"
	"literace/internal/sampler"
	"literace/internal/trace"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("%d benchmarks, want 10", len(all))
	}
	keys := map[string]bool{}
	micros, table4 := 0, 0
	for _, b := range all {
		if keys[b.Key] {
			t.Errorf("duplicate key %s", b.Key)
		}
		keys[b.Key] = true
		if b.Name == "" || b.Description == "" || b.DefaultScale <= 0 {
			t.Errorf("%s: incomplete metadata", b.Key)
		}
		if b.Micro {
			micros++
		}
		if b.InTable4 {
			table4++
		}
	}
	if micros != 2 {
		t.Errorf("micro count = %d", micros)
	}
	if table4 != 6 {
		t.Errorf("Table 4 benchmarks = %d, want 6", table4)
	}
	if len(Evaluated()) != 8 {
		t.Errorf("Evaluated = %d, want 8", len(Evaluated()))
	}
	if _, ok := ByKey("dryad"); !ok {
		t.Error("ByKey(dryad) failed")
	}
	if _, ok := ByKey("nope"); ok {
		t.Error("ByKey accepted unknown key")
	}
}

func TestAllBenchmarksAssemble(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Key, func(t *testing.T) {
			m, err := b.Module(0)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			if len(m.Funcs) < 4 {
				t.Errorf("only %d functions", len(m.Funcs))
			}
			// And every benchmark must survive both rewrite modes.
			for _, mode := range []instrument.Mode{instrument.ModeSampled, instrument.ModeFull} {
				if _, _, err := instrument.Rewrite(m, instrument.Options{Mode: mode}); err != nil {
					t.Errorf("rewrite %v: %v", mode, err)
				}
			}
		})
	}
}

func TestAllBenchmarksRunUninstrumented(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Key, func(t *testing.T) {
			t.Parallel()
			m, err := b.Module(0)
			if err != nil {
				t.Fatal(err)
			}
			mach, err := interp.New(m, interp.Options{Seed: 1, MaxInstrs: 200_000_000})
			if err != nil {
				t.Fatal(err)
			}
			res, err := mach.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Threads < 3 {
				t.Errorf("only %d threads", res.Threads)
			}
			if len(res.Prints) == 0 {
				t.Error("no final print")
			}
			if res.MemOps == 0 || res.SyncOps == 0 {
				t.Errorf("mem=%d sync=%d", res.MemOps, res.SyncOps)
			}
			nonStack := res.MemOps - res.StackMemOps
			if !b.Micro && b.Key != "concrt-sched" && nonStack < 400_000 {
				t.Errorf("non-stack mem ops = %d; too few for the rare-race threshold", nonStack)
			}
			t.Logf("%s: instrs=%d mem=%d sync=%d threads=%d", b.Key, res.Instrs, res.MemOps, res.SyncOps, res.Threads)
		})
	}
}

// fullyLoggedRaces instruments b with full logging plus shadow samplers,
// runs it, and returns the static race set with run metadata.
func fullyLoggedRaces(t *testing.T, b Benchmark, seed int64) (*race.Set, trace.Meta) {
	t.Helper()
	m, err := b.Module(0)
	if err != nil {
		t.Fatal(err)
	}
	rw, _, err := instrument.Rewrite(m, instrument.Options{Mode: instrument.ModeSampled})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(core.Config{
		NumFuncs: len(m.Funcs), Primary: sampler.NewFull(),
		Shadows: sampler.Evaluated(), Writer: w,
		EnableMemLog: true, EnableSyncLog: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	mach, err := interp.New(rw, interp.Options{Seed: seed, Runtime: rt, MaxInstrs: 500_000_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(mach.Meta(res)); err != nil {
		t.Fatal(err)
	}
	log, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := hb.Detect(log, hb.Options{SamplerBit: hb.AllEvents})
	if err != nil {
		t.Fatal(err)
	}
	set := race.NewSet()
	set.AddResult(dres)
	return set, log.Meta
}

func TestDryadPlantedRaces(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	set, meta := fullyLoggedRaces(t, mustByKey(t, "dryad"), 1)
	nonStack := meta.MemOps - meta.StackMemOps
	rare, freq := set.Split(nonStack)
	t.Logf("dryad: %d static races (%d rare, %d frequent), nonstack=%d",
		set.Len(), len(rare), len(freq), nonStack)
	// Plan: 3 rare + 5 frequent. Scheduling noise may shift a pair across
	// the threshold, so allow slack but require the right ballpark.
	if set.Len() < 6 || set.Len() > 12 {
		t.Errorf("dryad static races = %d, want ~8", set.Len())
	}
	if len(rare) < 2 {
		t.Errorf("rare races = %d, want >= 2", len(rare))
	}
	if len(freq) < 3 {
		t.Errorf("frequent races = %d, want >= 3", len(freq))
	}
}

func TestDryadStdlibHasMoreRareRaces(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	plain, pm := fullyLoggedRaces(t, mustByKey(t, "dryad"), 1)
	std, sm := fullyLoggedRaces(t, mustByKey(t, "dryad-stdlib"), 1)
	pr, _ := plain.Split(pm.MemOps - pm.StackMemOps)
	sr, _ := std.Split(sm.MemOps - sm.StackMemOps)
	if len(sr) <= len(pr) {
		t.Errorf("stdlib rare races (%d) should exceed plain (%d)", len(sr), len(pr))
	}
	if std.Len() <= plain.Len() {
		t.Errorf("stdlib total races (%d) should exceed plain (%d)", std.Len(), plain.Len())
	}
}

func mustByKey(t *testing.T, key string) Benchmark {
	t.Helper()
	b, ok := ByKey(key)
	if !ok {
		t.Fatalf("missing benchmark %s", key)
	}
	return b
}

func TestMicrosAreSyncHeavy(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, key := range []string{"lkrhash", "lflist"} {
		b := mustByKey(t, key)
		m, err := b.Module(0)
		if err != nil {
			t.Fatal(err)
		}
		mach, err := interp.New(m, interp.Options{Seed: 1, MaxInstrs: 200_000_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mach.Run()
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(res.SyncOps) / float64(res.Instrs)
		if ratio < 0.01 {
			t.Errorf("%s sync/instr = %.4f; not sync heavy", key, ratio)
		}
		t.Logf("%s: sync/instr = %.4f", key, ratio)
	}
}

func TestScaleGrowsWork(t *testing.T) {
	b := mustByKey(t, "concrt-sched")
	if len(b.Source(2)) <= 0 {
		t.Fatal("empty source")
	}
	m1, err := b.Module(1)
	if err != nil {
		t.Fatal(err)
	}
	// Same module shape at both scales; only loop bounds change.
	m2, err := b.Module(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Funcs) != len(m2.Funcs) {
		t.Errorf("scale changed function count: %d vs %d", len(m1.Funcs), len(m2.Funcs))
	}
}
