// Package literace is a sampling-based dynamic data-race detector: a Go
// implementation of "LiteRace: Effective Sampling for Lightweight
// Data-Race Detection" (Marino, Musuvathi, Narayanasamy; PLDI 2009).
//
// LiteRace makes dynamic race detection cheap enough to leave on by
// logging only a sampled subset of memory accesses — chosen by a
// thread-local adaptive bursty sampler that samples cold code at 100% and
// backs off to 0.1% as code gets hot — while always logging every
// synchronization operation, so the offline happens-before analysis never
// reports a false race.
//
// The package offers two front ends over one runtime:
//
//   - A compile-and-run pipeline for LIR programs: Assemble source text,
//     Instrument it (the function-cloning dispatch-check rewriter), Run it
//     on the deterministic multithreaded interpreter, and Detect races in
//     the resulting log. This reproduces the paper's whole system,
//     including its evaluation (see cmd/racebench).
//   - An embedded Detector (see NewDetector) for annotating a concurrent
//     Go program directly with region-enter, memory-access, and
//     synchronization events.
package literace

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"time"

	"literace/internal/asm"
	"literace/internal/core"
	"literace/internal/hb"
	"literace/internal/instrument"
	"literace/internal/interp"
	"literace/internal/lir"
	"literace/internal/obs"
	"literace/internal/obs/coverprof"
	"literace/internal/obs/diag"
	"literace/internal/race"
	"literace/internal/sampler"
	"literace/internal/stream"
	"literace/internal/trace"
)

// Program is an assembled LIR program, optionally instrumented.
type Program struct {
	orig *lir.Module // pre-instrumentation module (race PCs resolve here)
	mod  *lir.Module // module to execute
	inst *instrument.Stats
}

// Assemble parses LIR assembly text into a Program.
func Assemble(name, source string) (*Program, error) {
	m, err := asm.Assemble(name, source)
	if err != nil {
		return nil, err
	}
	return &Program{orig: m, mod: m}, nil
}

// Disassemble renders the program's executable module as assembly text.
func (p *Program) Disassemble() string { return asm.Disassemble(p.mod) }

// NumFuncs returns the function count of the original module.
func (p *Program) NumFuncs() int { return len(p.orig.Funcs) }

// FuncName resolves an original function index to its name.
func (p *Program) FuncName(idx int32) string {
	if idx < 0 || int(idx) >= len(p.orig.Funcs) {
		return fmt.Sprintf("fn%d", idx)
	}
	return p.orig.Funcs[idx].Name
}

// InstrumentStats describes what the rewriter did.
type InstrumentStats struct {
	Functions   int // functions given dispatch checks
	Clones      int // clone functions emitted
	MemAccesses int // loads/stores instrumented
	Spills      int // dispatch checks needing a register save/restore
}

// Instrument applies the LiteRace rewriting pass (two clones per function
// plus a dispatch check) and returns statistics. It is idempotent per
// Program: instrumenting twice is an error.
func (p *Program) Instrument() (InstrumentStats, error) {
	if p.mod.Rewritten {
		return InstrumentStats{}, fmt.Errorf("literace: program already instrumented")
	}
	rw, stats, err := instrument.Rewrite(p.orig, instrument.Options{Mode: instrument.ModeSampled})
	if err != nil {
		return InstrumentStats{}, err
	}
	p.mod = rw
	p.inst = stats
	return InstrumentStats{
		Functions:   stats.Dispatches,
		Clones:      stats.Clones,
		MemAccesses: stats.MemAccesses,
		Spills:      stats.Spills,
	}, nil
}

// EngineVC and EngineEpoch name the two detection cores accepted
// wherever an engine name is taken (Config.Engine, StreamOptions.Engine,
// DetectEngine): the vector-clock oracle and the epoch fast-path core
// (internal/shadow). Both report byte-identical race sets; the epoch
// core trades the per-access vector-clock compare for O(1) epoch checks.
const (
	EngineVC    = hb.EngineVC
	EngineEpoch = hb.EngineEpoch
)

// ValidEngine reports whether name selects a known detection engine;
// the empty string selects EngineVC.
func ValidEngine(name string) bool { return hb.ValidEngine(name) }

// Config controls an instrumented execution.
type Config struct {
	// Sampler names the primary sampling strategy: "TL-Ad" (default),
	// "TL-Fx", "G-Ad", "G-Fx", "Rnd10", "Rnd25", "UCP", or "Full".
	Sampler string
	// Engine selects the detection core for the online detector
	// (Config.Online): EngineVC (default) or EngineEpoch. Offline
	// passes take the engine separately (DetectEngine,
	// StreamOptions.Engine). Run rejects unknown names.
	Engine string
	// Seed drives the deterministic scheduler and samplers.
	Seed int64
	// LogTo receives the encoded event log; when nil an in-memory log is
	// kept for RunAndDetect.
	LogTo io.Writer
	// MaxInstrs bounds execution (0 = 1e9).
	MaxInstrs uint64
	// SchedTrace enables scheduler-slice markers in the log (KindSched
	// events): one begin and one end/preempt record per scheduling
	// slice, carrying the virtual instruction clock. They let `literace
	// timeline` reconstruct true per-thread execution tracks. Off by
	// default (the CLI turns it on for `literace run`).
	SchedTrace bool
	// Online enables the §4.4 online-detection variant: a happens-before
	// detector consumes events as the program emits them (the
	// interpreter's emission order is a legal interleaving), so races are
	// available immediately in RunResult.OnlineReport without replaying a
	// log. The log is still written.
	Online bool
	// Coverage enables per-function sampler coverage profiling: the
	// runtime records, per (thread, function), dispatch outcomes, the
	// adaptive back-off trajectory, burst windows over logged memory
	// events, and executed-vs-logged memory totals. The aggregated
	// profile lands in RunResult.Profile, and — together with Online —
	// lets BuildRunReport attribute each race to the sampling bursts
	// that captured its accesses. Costs a few counter updates per
	// dispatch and memory operation.
	Coverage bool
	// Obs, when non-nil, enables the runtime observability layer: the
	// sampler runtime, interpreter, trace writer, and detector publish
	// live telemetry (dispatch counts, per-sampler ESR, burst histograms,
	// scheduler and replay statistics) into the registry, and the
	// pipeline records phase spans. Nil (the default) disables telemetry
	// at zero per-event cost. See docs/OBSERVABILITY.md.
	Obs *obs.Registry
	// Diag, when non-nil, is the flight recorder: the interpreter's
	// periodic live hook records run-live heartbeat spans (wall time
	// against the virtual instruction clock) into it. Nil (the default)
	// disables recording at zero cost. See docs/OBSERVABILITY.md.
	Diag *diag.Recorder
	// Log, when non-nil, receives structured diagnostics (log/slog).
	// Nil keeps the pipeline silent.
	Log *slog.Logger
}

// RunResult summarizes an execution.
type RunResult struct {
	// Meta is the run metadata recorded in the log trailer.
	Meta trace.Meta
	// EffectiveRate is the fraction of memory operations logged.
	EffectiveRate float64
	// LoggedMemOps is the number of memory operations logged.
	LoggedMemOps uint64
	// Prints holds the program's print output.
	Prints []int64
	// OnlineReport holds the streaming detector's findings when
	// Config.Online was set; nil otherwise.
	OnlineReport *Report
	// Profile is the per-function sampler coverage profile when
	// Config.Coverage was set; nil otherwise.
	Profile *coverprof.Profile

	log       *bytes.Buffer        // non-nil when Config.LogTo was nil
	cov       *coverprof.Collector // non-nil when Config.Coverage was set
	onlineRes *hb.Result           // non-nil when Config.Online was set
}

// Run executes the instrumented program under the configured sampler,
// producing an event log.
func (p *Program) Run(cfg Config) (*RunResult, error) {
	if !p.mod.Rewritten {
		return nil, fmt.Errorf("literace: program not instrumented; call Instrument first")
	}
	name := cfg.Sampler
	if name == "" {
		name = "TL-Ad"
	}
	strat, ok := sampler.ByName(name)
	if !ok {
		return nil, fmt.Errorf("literace: unknown sampler %q", name)
	}
	if !hb.ValidEngine(cfg.Engine) {
		return nil, fmt.Errorf("literace: unknown detection engine %q (valid: %s, %s)",
			cfg.Engine, EngineVC, EngineEpoch)
	}

	out := &RunResult{}
	var sink io.Writer = cfg.LogTo
	if sink == nil {
		out.log = &bytes.Buffer{}
		sink = out.log
	}
	w, err := trace.NewWriter(sink)
	if err != nil {
		return nil, err
	}
	w.SetObs(cfg.Obs)
	rtCfg := core.Config{
		NumFuncs:       len(p.orig.Funcs),
		Primary:        strat,
		Writer:         w,
		EnableMemLog:   true,
		EnableSyncLog:  true,
		EnableSchedLog: cfg.SchedTrace,
		Seed:           cfg.Seed,
		Cost:           core.DefaultCostModel(),
		Obs:            cfg.Obs,
	}
	var online *hb.Detector
	if cfg.Online {
		// Evidence rides along when coverage profiling is on: the pair is
		// what BuildRunReport needs to stamp evidence digests, and the
		// capture cost is bounded by the sampled (logged) access count.
		online = hb.NewDetector(hb.Options{
			SamplerBit: hb.AllEvents, Obs: cfg.Obs, Evidence: cfg.Coverage,
			Engine: cfg.Engine,
		})
		rtCfg.OnEvent = func(e trace.Event) { online.Process(e) }
	}
	if cfg.Coverage {
		sched, blen := sampler.ScheduleOf(strat)
		out.cov = coverprof.NewCollector(len(p.orig.Funcs), sched, blen)
		rtCfg.Coverage = out.cov
	}
	rt, err := core.NewRuntime(rtCfg)
	if err != nil {
		return nil, err
	}
	iOpts := interp.Options{
		Seed: cfg.Seed, Runtime: rt, MaxInstrs: cfg.MaxInstrs, Obs: cfg.Obs,
	}
	if cfg.Obs != nil || cfg.Diag != nil {
		// Periodically fold thread-local counters and refresh the live ESR
		// gauges so a telemetry scrape mid-run (literace run -serve) sees
		// current sampler state. The hook runs on the interpreter's
		// goroutine, which owns all ThreadState. With a flight recorder
		// attached, each firing also leaves a run-live heartbeat span:
		// wall time between hooks against the virtual instruction clock,
		// so a post-mortem can see where execution slowed or stopped.
		lastLive := time.Now()
		iOpts.OnLive = func(l interp.LiveStats) {
			if cfg.Obs != nil {
				rt.FlushLiveStats()
				rt.PublishESR(l.MemOps)
			}
			if cfg.Diag != nil {
				now := time.Now()
				cfg.Diag.Span(diag.StageRunLive, -1, lastLive, now.Sub(lastLive), l.Instrs, l.MemOps)
				lastLive = now
			}
		}
	}
	mach, err := interp.New(p.mod, iOpts)
	if err != nil {
		return nil, err
	}
	// Periodic checkpoints snapshot the interpreter's counters into the
	// log, so a run killed mid-execution still carries usable metadata.
	w.SetMetaSource(mach.PartialMeta)
	span := cfg.Obs.StartSpan("run")
	res, runErr := mach.Run()
	span.EndItems(res.Instrs)
	meta := mach.Meta(res)
	if runErr != nil {
		// The program died (deadlock, runtime fault, instruction budget).
		// Flush and finalize the partial trace before surfacing the error
		// so what was logged stays salvageable instead of silently
		// dropped in the thread buffers.
		_ = w.Close(meta)
		if cfg.Log != nil {
			cfg.Log.Error("run failed; partial trace flushed", "err", runErr)
		}
		return nil, fmt.Errorf("literace: run failed: %w (partial trace flushed)", runErr)
	}
	if err := w.Close(meta); err != nil {
		return nil, err
	}
	rt.PublishESR(meta.MemOps)
	out.Meta = meta
	out.Prints = res.Prints
	out.LoggedMemOps = res.RuntimeStats.LoggedMemOps
	if meta.MemOps > 0 {
		out.EffectiveRate = float64(res.RuntimeStats.LoggedMemOps) / float64(meta.MemOps)
	}
	if out.cov != nil {
		out.Profile = out.cov.Snapshot(p.FuncName)
		out.Profile.Publish(cfg.Obs)
	}
	if online != nil {
		out.onlineRes = online.Result()
		set := race.NewSet()
		set.AddResult(out.onlineRes)
		out.OnlineReport = buildReport(set, meta, out.onlineRes, p.FuncName)
	}
	return out, nil
}

// PC identifies an instruction in the original (pre-instrumentation)
// program.
type PC struct {
	Func  int32 `json:"func"`  // original function index
	Index int32 `json:"index"` // instruction index within the function
}

// Race is one static data race, resolved to function names. The JSON
// field order is part of the literace.races/v1 contract (see
// Report.MarshalRaces) and must stay stable.
type Race struct {
	// First and Second identify the racing instructions ("func:index"),
	// normalized so First <= Second.
	First  string `json:"first"`
	Second string `json:"second"`
	// FirstPC and SecondPC are the same locations in structured form,
	// usable with Program.SourceContext.
	FirstPC  PC `json:"first_pc"`
	SecondPC PC `json:"second_pc"`
	// Count is the number of dynamic occurrences observed.
	Count uint64 `json:"count"`
	// WriteWrite and ReadWrite split Count by access-pair kind.
	WriteWrite uint64 `json:"write_write"`
	ReadWrite  uint64 `json:"read_write"`
	// Rare reports the paper's Table 4 classification: fewer than 3
	// occurrences per million non-stack memory instructions.
	Rare bool `json:"rare"`
	// Unconfirmed marks a race only ever observed after log damage
	// weakened the happens-before orderings (salvaged logs, degraded
	// replay). The zero-false-positive guarantee does not cover it.
	Unconfirmed bool `json:"unconfirmed"`
	// Addr is one racing address, for debugging.
	Addr uint64 `json:"addr"`
}

// Report is the outcome of race detection on one log.
type Report struct {
	Races []Race
	// MemOpsAnalyzed counts the sampled accesses the detector processed.
	MemOpsAnalyzed uint64
	// SyncOpsAnalyzed counts synchronization events processed.
	SyncOpsAnalyzed uint64
	// Meta is the log's run metadata.
	Meta trace.Meta

	// Degraded reports the analysis ran on a damaged log: chunks were
	// dropped in salvage or the replay weakened orderings. Races split
	// into confirmed (still no false positives) and unconfirmed.
	Degraded bool
	// DegradedSkips counts the timestamp slots the replay skipped over.
	DegradedSkips uint64
}

// Confirmed returns the races the zero-false-positive guarantee covers.
func (r *Report) Confirmed() []Race {
	var out []Race
	for _, rc := range r.Races {
		if !rc.Unconfirmed {
			out = append(out, rc)
		}
	}
	return out
}

// String renders the report for human consumption.
func (r *Report) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%d static data races (%d mem ops, %d sync ops analyzed)\n",
		len(r.Races), r.MemOpsAnalyzed, r.SyncOpsAnalyzed)
	if r.Degraded {
		unconf := len(r.Races) - len(r.Confirmed())
		fmt.Fprintf(&b, "degraded analysis: %d confirmed, %d unconfirmed race(s); %d timestamp slots skipped\n",
			len(r.Races)-unconf, unconf, r.DegradedSkips)
	}
	for _, rc := range r.Races {
		class := "frequent"
		if rc.Rare {
			class = "rare"
		}
		suffix := ""
		if rc.Unconfirmed {
			suffix = " UNCONFIRMED"
		}
		fmt.Fprintf(&b, "  %-9s %s <-> %s  count=%d (ww=%d, rw=%d) addr=%#x%s\n",
			class, rc.First, rc.Second, rc.Count, rc.WriteWrite, rc.ReadWrite, rc.Addr, suffix)
	}
	return b.String()
}

// Detect runs the offline happens-before analysis over an encoded log.
// resolve maps original function indices to names; pass nil for raw
// indices, or Program.FuncName for source names.
func Detect(log io.Reader, resolve func(int32) string) (*Report, error) {
	return DetectObs(log, resolve, nil)
}

// DetectObs is Detect with telemetry: when reg is non-nil the decode,
// replay, and detection phases record spans and the detector publishes
// its counters (vector-clock joins, replay stalls, races found) into reg.
func DetectObs(log io.Reader, resolve func(int32) string, reg *obs.Registry) (*Report, error) {
	return DetectEngine(log, resolve, reg, "")
}

// DetectEngine is DetectObs with an explicit detection core: EngineVC
// (also the empty string) or EngineEpoch. The reported races are
// byte-identical either way; unknown names error.
func DetectEngine(log io.Reader, resolve func(int32) string, reg *obs.Registry, engine string) (*Report, error) {
	span := reg.StartSpan("decode")
	decoded, err := trace.ReadAll(log)
	if err != nil {
		return nil, err
	}
	span.EndItems(uint64(decoded.NumEvents()))
	span = reg.StartSpan("replay+detect")
	res, err := hb.Detect(decoded, hb.Options{SamplerBit: hb.AllEvents, Obs: reg, Engine: engine})
	if err != nil {
		return nil, err
	}
	span.EndItems(res.MemOps + res.SyncOps)
	set := race.NewSet()
	set.AddResult(res)
	return buildReport(set, decoded.Meta, res, resolve), nil
}

// DetectSalvaged analyzes a possibly damaged log: the log is decoded with
// trace.Salvage (dropping corrupt chunks and resyncing), replayed in
// degraded mode (hb.ReplayDegraded), and races first observed after any
// ordering was weakened are tagged unconfirmed. The returned SalvageReport
// describes the damage; Report.Degraded is set when either salvage lost
// data or the replay had to weaken orderings. Confirmed races keep the
// zero-false-positive guarantee. reg may be nil.
func DetectSalvaged(log io.Reader, resolve func(int32) string, reg *obs.Registry) (*Report, *trace.SalvageReport, error) {
	return DetectSalvagedEngine(log, resolve, reg, "")
}

// DetectSalvagedEngine is DetectSalvaged with an explicit detection
// core (see DetectEngine).
func DetectSalvagedEngine(log io.Reader, resolve func(int32) string, reg *obs.Registry, engine string) (*Report, *trace.SalvageReport, error) {
	span := reg.StartSpan("salvage")
	decoded, srep, err := trace.SalvageObs(log, reg)
	if err != nil {
		return nil, nil, err
	}
	span.EndItems(uint64(decoded.NumEvents()))
	span = reg.StartSpan("replay+detect")
	res, deg, err := hb.DetectDegraded(decoded, hb.Options{SamplerBit: hb.AllEvents, Obs: reg, Engine: engine})
	if err != nil {
		return nil, srep, err
	}
	span.EndItems(res.MemOps + res.SyncOps)
	set := race.NewSet()
	set.AddResult(res)
	rep := buildReport(set, decoded.Meta, res, resolve)
	rep.Degraded = deg.Degraded() || srep.Lossy()
	rep.DegradedSkips = deg.SlotsSkipped
	return rep, srep, nil
}

func buildReport(set *race.Set, meta trace.Meta, res *hb.Result, resolve func(int32) string) *Report {
	if resolve == nil {
		resolve = func(f int32) string { return fmt.Sprintf("fn%d", f) }
	}
	name := func(pc lir.PC) string { return fmt.Sprintf("%s:%d", resolve(pc.Func), pc.Index) }
	nonStack := meta.MemOps - meta.StackMemOps
	rep := &Report{Meta: meta, MemOpsAnalyzed: res.MemOps, SyncOpsAnalyzed: res.SyncOps}
	for _, st := range set.Races() {
		rep.Races = append(rep.Races, Race{
			First:       name(st.Key.A),
			Second:      name(st.Key.B),
			FirstPC:     PC{Func: st.Key.A.Func, Index: st.Key.A.Index},
			SecondPC:    PC{Func: st.Key.B.Func, Index: st.Key.B.Index},
			Count:       st.Count,
			WriteWrite:  st.WriteWrite,
			ReadWrite:   st.ReadWrite,
			Rare:        st.Rare(nonStack),
			Unconfirmed: st.Unconfirmed(),
			Addr:        st.SampleAddr,
		})
	}
	sort.Slice(rep.Races, func(i, j int) bool {
		a, b := rep.Races[i], rep.Races[j]
		if a.First != b.First {
			return a.First < b.First
		}
		return a.Second < b.Second
	})
	return rep
}

// RunAndDetect is the convenience path: execute the instrumented program
// and analyze its log in one step.
func (p *Program) RunAndDetect(cfg Config) (*RunResult, *Report, error) {
	if cfg.LogTo != nil {
		return nil, nil, fmt.Errorf("literace: RunAndDetect manages the log itself; leave LogTo nil")
	}
	res, err := p.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	rep, err := DetectObs(bytes.NewReader(res.log.Bytes()), p.FuncName, cfg.Obs)
	if err != nil {
		return nil, nil, err
	}
	return res, rep, nil
}

// SourceContext renders the original instructions around pc (window lines
// on each side), marking the racing instruction — the triage view a race
// report links to.
func (p *Program) SourceContext(pc PC, window int) string {
	if pc.Func < 0 || int(pc.Func) >= len(p.orig.Funcs) {
		return fmt.Sprintf("<unknown function %d>\n", pc.Func)
	}
	f := p.orig.Funcs[pc.Func]
	if pc.Index < 0 || int(pc.Index) >= len(f.Code) {
		return fmt.Sprintf("<%s: instruction %d out of range>\n", f.Name, pc.Index)
	}
	if window < 0 {
		window = 0
	}
	lo := int(pc.Index) - window
	if lo < 0 {
		lo = 0
	}
	hi := int(pc.Index) + window
	if hi >= len(f.Code) {
		hi = len(f.Code) - 1
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "func %s:\n", f.Name)
	for i := lo; i <= hi; i++ {
		marker := "   "
		if int32(i) == pc.Index {
			marker = "=> "
		}
		fmt.Fprintf(&b, "  %s%4d: %s\n", marker, i, f.Code[i].String())
	}
	return b.String()
}

// StreamRace is one dynamic race as delivered live by a streaming
// session, resolved to the same normalized "func:index" pair a Report
// uses (First <= Second).
type StreamRace struct {
	First, Second string
	// WriteWrite reports whether both accesses were writes.
	WriteWrite bool
	// Addr is the racing address.
	Addr uint64
	// Unconfirmed marks a race first observed after log damage weakened
	// the happens-before orderings.
	Unconfirmed bool
}

// StreamOptions configures a streaming detection session.
type StreamOptions struct {
	// Shards is the number of parallel detection workers (shadow memory
	// partitioned by address); 0 means stream.DefaultShards.
	Shards int
	// Obs, when non-nil, receives live pipeline telemetry (the
	// literace_stream_* metric families).
	Obs *obs.Registry
	// Diag, when non-nil, is the flight recorder: every pipeline stage
	// records spans and every anomaly (CRC failure, sequence gap,
	// resync, backpressure, backlog high-watermark, degrade transition)
	// leaves a structured record for post-mortem inspection.
	Diag *diag.Recorder
	// Log, when non-nil, receives structured pipeline warnings (slog).
	Log *slog.Logger
	// OnRace, when non-nil, is invoked as each dynamic race is found —
	// in discovery order, which under sharding is not replay order. The
	// final Report is the canonical deduplicated view.
	OnRace func(StreamRace)
	// Evidence enables forensic evidence capture (hb.Options.Evidence):
	// every race in the final stream.Result carries immutable vector-
	// clock, frontier, and lockset snapshots, byte-identical to a batch
	// evidence pass over the same bytes.
	Evidence bool
	// NearMissMargin enables near-miss analytics
	// (hb.Options.NearMissMargin); 0 disables.
	NearMissMargin int
	// Engine selects the per-shard detection core: EngineVC (also the
	// empty string) or EngineEpoch. The final report is byte-identical
	// either way. Validate with ValidEngine first; unknown names fall
	// back to the default core.
	Engine string
}

// StreamSession runs the online detection pipeline over an LTRC2 log
// that may still be growing: Feed it bytes as they appear (tailing a
// file, draining a socket) and Finish once the input is over. The final
// Report is identical to what Detect/DetectSalvaged would produce on the
// same bytes. See docs/STREAMING.md.
type StreamSession struct {
	p       *stream.Pipeline
	resolve func(int32) string
}

// NewStreamSession starts a streaming detection session. resolve maps
// original function indices to names (nil for raw indices).
func NewStreamSession(resolve func(int32) string, opts StreamOptions) *StreamSession {
	s := &StreamSession{resolve: resolve}
	popts := stream.Options{
		Shards:         opts.Shards,
		SamplerBit:     hb.AllEvents,
		Obs:            opts.Obs,
		Diag:           opts.Diag,
		Log:            opts.Log,
		Evidence:       opts.Evidence,
		NearMissMargin: opts.NearMissMargin,
		Engine:         opts.Engine,
	}
	if opts.OnRace != nil {
		name := func(pc lir.PC) string { return fmt.Sprintf("fn%d:%d", pc.Func, pc.Index) }
		if resolve != nil {
			name = func(pc lir.PC) string { return fmt.Sprintf("%s:%d", resolve(pc.Func), pc.Index) }
		}
		popts.OnRace = func(r hb.DynamicRace) {
			k := race.KeyOf(r)
			opts.OnRace(StreamRace{
				First:       name(k.A),
				Second:      name(k.B),
				WriteWrite:  r.PrevWrite && r.CurWrite,
				Addr:        r.Addr,
				Unconfirmed: r.Unconfirmed,
			})
		}
	}
	s.p = stream.New(popts)
	return s
}

// Feed appends encoded log bytes; completed chunks are analyzed
// immediately. The error is non-nil only when the input is not an LTRC2
// log at all; damage within the stream is recovered from, never fatal.
func (s *StreamSession) Feed(b []byte) error { return s.p.Feed(b) }

// Complete reports whether the log's trailer has been seen — the writer
// closed it, so no more events are coming.
func (s *StreamSession) Complete() bool { return s.p.Complete() }

// Backlog returns the number of decoded events buffered waiting for an
// earlier timestamp to arrive.
func (s *StreamSession) Backlog() int { return s.p.Backlog() }

// BacklogHighWater returns the largest backlog ever observed.
func (s *StreamSession) BacklogHighWater() int { return s.p.BacklogHighWater() }

// Idle tells the session the input tail has gone idle (a poll interval
// passed without growth): the live stream.events_per_sec gauge decays
// to zero instead of holding the last burst's rate.
func (s *StreamSession) Idle() { s.p.Idle() }

// Probe returns the live readings a diag.SLO evaluates (merge backlog
// and its high watermark). Call it from the feeding goroutine.
func (s *StreamSession) Probe() diag.Probe { return s.p.Probe() }

// Finish declares the input over and returns the final Report — equal to
// a batch DetectSalvaged over the same bytes — plus the pipeline result
// with its salvage, degradation, and throughput detail.
func (s *StreamSession) Finish() (*Report, *stream.Result, error) {
	res, err := s.p.Finish()
	if err != nil {
		return nil, nil, err
	}
	set := race.NewSet()
	set.AddResult(&res.Result)
	rep := buildReport(set, res.Meta, &res.Result, s.resolve)
	rep.Degraded = res.Degradation.Degraded() || res.Salvage.Lossy()
	rep.DegradedSkips = res.Degradation.SlotsSkipped
	return rep, res, nil
}

// DetectStream is the one-shot convenience: run the streaming pipeline
// over a complete encoded log. The Report equals DetectSalvaged's on the
// same bytes; the pipeline's only advantage here is sharded parallelism.
func DetectStream(log io.Reader, resolve func(int32) string, reg *obs.Registry) (*Report, *trace.SalvageReport, error) {
	s := NewStreamSession(resolve, StreamOptions{Obs: reg})
	buf := make([]byte, 64<<10)
	for {
		n, err := log.Read(buf)
		if n > 0 {
			if ferr := s.Feed(buf[:n]); ferr != nil {
				return nil, nil, ferr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
	}
	rep, res, err := s.Finish()
	if err != nil {
		return nil, nil, err
	}
	return rep, res.Salvage, nil
}

// VerifyLog checks an encoded log's structural invariants beyond what
// decoding enforces: dense per-counter timestamps, per-thread timestamp
// monotonicity, and sampler-mask bounds (see docs/FORMAT.md). A log that
// verifies is guaranteed to replay.
func VerifyLog(log io.Reader) error {
	decoded, err := trace.ReadAll(log)
	if err != nil {
		return err
	}
	return trace.Verify(decoded)
}

// Samplers lists the available sampler names in the paper's Table 3 order
// plus "Full".
func Samplers() []string {
	var names []string
	for _, s := range sampler.Evaluated() {
		names = append(names, s.Name())
	}
	return append(names, "Full")
}
