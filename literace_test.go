package literace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

const racyProgram = `
glob shared 1
glob protected 1
glob lk 1
func touch 1 6 {
    glob r1, shared
    store r1, 0, r0
    glob r2, lk
    lock r2
    glob r3, protected
    load r4, r3, 0
    addi r4, r4, 1
    store r3, 0, r4
    unlock r2
    ret r0
}
func main 0 6 {
    movi r0, 1
    fork r1, touch, r0
    call _, touch, r0
    join r1
    exit
}
`

func TestPipelineEndToEnd(t *testing.T) {
	p, err := Assemble("racy", racyProgram)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumFuncs() != 2 {
		t.Errorf("NumFuncs = %d", p.NumFuncs())
	}
	stats, err := p.Instrument()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Functions != 2 || stats.Clones != 4 || stats.MemAccesses == 0 {
		t.Errorf("instrument stats: %+v", stats)
	}
	if _, err := p.Instrument(); err == nil {
		t.Error("double instrument accepted")
	}

	res, rep, err := p.RunAndDetect(Config{Sampler: "Full", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveRate != 1 {
		t.Errorf("Full sampler rate = %v", res.EffectiveRate)
	}
	if len(rep.Races) == 0 {
		t.Fatal("planted race not found")
	}
	for _, r := range rep.Races {
		if !strings.HasPrefix(r.First, "touch:") || !strings.HasPrefix(r.Second, "touch:") {
			t.Errorf("race names not resolved: %+v", r)
		}
		if strings.Contains(r.First, "protected") {
			t.Errorf("lock-protected access reported: %+v", r)
		}
	}
	if s := rep.String(); !strings.Contains(s, "touch:") {
		t.Errorf("report render: %s", s)
	}
}

func TestRunRequiresInstrument(t *testing.T) {
	p, err := Assemble("racy", racyProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(Config{}); err == nil {
		t.Error("Run on uninstrumented program accepted")
	}
}

func TestUnknownSampler(t *testing.T) {
	p, _ := Assemble("racy", racyProgram)
	if _, err := p.Instrument(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(Config{Sampler: "bogus"}); err == nil {
		t.Error("unknown sampler accepted")
	}
}

func TestExternalLogWriter(t *testing.T) {
	p, _ := Assemble("racy", racyProgram)
	if _, err := p.Instrument(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.Run(Config{Sampler: "Full", LogTo: &buf}); err != nil {
		t.Fatal(err)
	}
	rep, err := Detect(bytes.NewReader(buf.Bytes()), p.FuncName)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Error("no races via external log")
	}
	// RunAndDetect refuses an external writer.
	if _, _, err := p.RunAndDetect(Config{LogTo: &buf}); err == nil {
		t.Error("RunAndDetect accepted LogTo")
	}
}

func TestSamplersList(t *testing.T) {
	names := Samplers()
	if len(names) != 8 || names[0] != "TL-Ad" || names[7] != "Full" {
		t.Errorf("Samplers() = %v", names)
	}
	p, _ := Assemble("racy", racyProgram)
	if _, err := p.Instrument(); err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, err := p.Run(Config{Sampler: n, Seed: 2}); err != nil {
			t.Errorf("sampler %s: %v", n, err)
		}
	}
}

func TestDisassembleAndFuncName(t *testing.T) {
	p, _ := Assemble("racy", racyProgram)
	if !strings.Contains(p.Disassemble(), "func touch") {
		t.Error("disassembly missing function")
	}
	if p.FuncName(0) != "touch" || p.FuncName(99) != "fn99" || p.FuncName(-1) != "fn-1" {
		t.Error("FuncName resolution broken")
	}
}

// TestEmbeddedDetector drives the embedded API from real goroutines: two
// racing writers on one address, plus a properly locked counter.
func TestEmbeddedDetector(t *testing.T) {
	d, err := NewDetector(Options{Regions: 4, Sampler: "Full", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const (
		regionWorker = 1
		addrRacy     = 0x1000
		addrSafe     = 0x2000
		lockVar      = 0x3000
	)
	var mu sync.Mutex

	main := d.Thread(0)
	main.Enter(0)

	var wg sync.WaitGroup
	for i := int32(1); i <= 2; i++ {
		th := d.StartThread(main, i)
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			th.Enter(regionWorker)
			th.Write(addrRacy, 1) // unsynchronized: the race
			mu.Lock()
			th.Lock(lockVar)
			th.Read(addrSafe, 2)
			th.Write(addrSafe, 3)
			th.Unlock(lockVar)
			mu.Unlock()
			th.Exit()
			th.End()
			if th.Err() != nil {
				t.Errorf("thread error: %v", th.Err())
			}
		}(th)
	}
	wg.Wait()
	main.Join(1)
	main.Join(2)
	main.Exit()
	main.End()

	rep, err := d.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no report from in-memory detector")
	}
	foundRacy, foundSafe := false, false
	for _, r := range rep.Races {
		if r.Addr == addrRacy {
			foundRacy = true
		}
		if r.Addr == addrSafe {
			foundSafe = true
		}
	}
	if !foundRacy {
		t.Errorf("embedded race not found: %+v", rep.Races)
	}
	if foundSafe {
		t.Errorf("lock-protected address reported: %+v", rep.Races)
	}
	if _, err := d.Close(); err == nil {
		t.Error("double Close accepted")
	}
}

func TestEmbeddedValidation(t *testing.T) {
	if _, err := NewDetector(Options{}); err == nil {
		t.Error("Regions=0 accepted")
	}
	if _, err := NewDetector(Options{Regions: 1, Sampler: "nope"}); err == nil {
		t.Error("bad sampler accepted")
	}
	d, err := NewDetector(Options{Regions: 1})
	if err != nil {
		t.Fatal(err)
	}
	th := d.Thread(0)
	th.Enter(5) // out of range
	if th.Err() == nil {
		t.Error("out-of-range region accepted")
	}
	// Accesses outside any region are counted but unsampled; must not panic.
	th2 := d.Thread(1)
	th2.Read(1, 0)
	th2.Write(1, 0)
	th2.Exit() // exit with empty stack must not panic
}

func TestEmbeddedSamplingSkipsCheaply(t *testing.T) {
	d, err := NewDetector(Options{Regions: 2, Sampler: "TL-Ad", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	th := d.Thread(0)
	sampledCount := 0
	for i := 0; i < 1000; i++ {
		if th.Enter(1) {
			sampledCount++
		}
		th.Write(0x100, 1)
		th.Exit()
	}
	th.End()
	rep, err := d.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sampledCount >= 1000 || sampledCount < 10 {
		t.Errorf("sampled %d/1000 region entries", sampledCount)
	}
	if rep.Meta.MemOps != 1000 {
		t.Errorf("MemOps = %d, want 1000 (all accesses counted)", rep.Meta.MemOps)
	}
}

func TestEmbeddedAllocSuppressesReuse(t *testing.T) {
	d, err := NewDetector(Options{Regions: 2, Sampler: "Full"})
	if err != nil {
		t.Fatal(err)
	}
	a := d.Thread(0)
	a.Enter(0)
	a.Write(0x5000, 1)
	a.Free(0x5000, 8)
	a.Exit()
	a.End()

	b := d.Thread(1)
	b.Enter(1)
	b.Alloc(0x5000, 8)
	b.Write(0x5000, 2)
	b.Exit()
	b.End()

	rep, err := d.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) != 0 {
		t.Errorf("reuse race not suppressed: %+v", rep.Races)
	}
}

func TestOnlineMatchesOffline(t *testing.T) {
	p, _ := Assemble("racy", racyProgram)
	if _, err := p.Instrument(); err != nil {
		t.Fatal(err)
	}
	res, offline, err := p.RunAndDetect(Config{Sampler: "Full", Seed: 5, Online: true})
	if err != nil {
		t.Fatal(err)
	}
	online := res.OnlineReport
	if online == nil {
		t.Fatal("no online report")
	}
	if len(online.Races) != len(offline.Races) {
		t.Fatalf("online %d races vs offline %d", len(online.Races), len(offline.Races))
	}
	for i := range online.Races {
		a, b := online.Races[i], offline.Races[i]
		if a.First != b.First || a.Second != b.Second || a.Count != b.Count {
			t.Errorf("race %d differs: online %+v offline %+v", i, a, b)
		}
	}
}

func TestOnlineDisabledByDefault(t *testing.T) {
	p, _ := Assemble("racy", racyProgram)
	if _, err := p.Instrument(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(Config{Sampler: "Full"})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlineReport != nil {
		t.Error("online report produced without Online flag")
	}
}

func TestSourceContext(t *testing.T) {
	p, _ := Assemble("racy", racyProgram)
	if _, err := p.Instrument(); err != nil {
		t.Fatal(err)
	}
	_, rep, err := p.RunAndDetect(Config{Sampler: "Full", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Fatal("no races")
	}
	r := rep.Races[0]
	ctx := p.SourceContext(r.FirstPC, 2)
	if !strings.Contains(ctx, "func touch") || !strings.Contains(ctx, "=>") {
		t.Errorf("context:\n%s", ctx)
	}
	if !strings.Contains(ctx, "store") {
		t.Errorf("context does not show the racing store:\n%s", ctx)
	}
	// Out-of-range handling.
	if !strings.Contains(p.SourceContext(PC{Func: 99}, 1), "unknown function") {
		t.Error("bad function not reported")
	}
	if !strings.Contains(p.SourceContext(PC{Func: 0, Index: 999}, 1), "out of range") {
		t.Error("bad index not reported")
	}
	// Window clamping at function boundaries must not panic.
	_ = p.SourceContext(PC{Func: 0, Index: 0}, 100)
}

func TestVerifyLog(t *testing.T) {
	p, _ := Assemble("racy", racyProgram)
	if _, err := p.Instrument(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.Run(Config{Sampler: "TL-Ad", LogTo: &buf}); err != nil {
		t.Fatal(err)
	}
	if err := VerifyLog(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("runtime-produced log fails verification: %v", err)
	}
	if err := VerifyLog(strings.NewReader("garbage")); err == nil {
		t.Error("garbage verified")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	p, _ := Assemble("racy", racyProgram)
	if _, err := p.Instrument(); err != nil {
		t.Fatal(err)
	}
	_, rep, err := p.RunAndDetect(Config{Sampler: "Full"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Races) != len(rep.Races) || back.Races[0].First != rep.Races[0].First {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}
