package literace

import (
	"sort"

	"literace/internal/forensics"
	"literace/internal/hb"
	"literace/internal/lir"
	"literace/internal/obs/coverprof"
	"literace/internal/obs/ledger"
	"literace/internal/trace"
)

// BuildRunReport assembles the literace.runreport/v2 artifact for an
// execution of p: run metadata, the coverage table (when Config.Coverage
// was set), the race report rep (typically res.OnlineReport), and — when
// both coverage and online detection were on — the sampling bursts that
// captured each race's two accesses. scale is the workload scale the
// caller ran at (0 when not applicable). The artifact is byte-stable per
// (module, sampler, scale, seed).
func (p *Program) BuildRunReport(res *RunResult, rep *Report, scale int) *ledger.RunReport {
	out := reportFromMeta(res.Meta, "run", scale)
	out.LoggedMemOps = res.LoggedMemOps
	out.ESR = res.EffectiveRate
	if res.Profile != nil {
		out.Coverage = coverageRows(res.Profile)
		for _, w := range res.Profile.LowCoverage(coverprof.DefaultWarnMinMem, coverprof.DefaultWarnMaxESR) {
			out.Warnings = append(out.Warnings, w.Message)
		}
	}
	if rep != nil {
		out.Races = raceRows(rep, res.cov, res.onlineRes)
	}
	return out
}

// BuildDetectReport assembles a run report from an offline detection
// pass (literace detect). No coverage table or burst attribution is
// available — the log records what was sampled, not what executed — so
// the report carries the detection results and log metadata only.
func BuildDetectReport(rep *Report, scale int) *ledger.RunReport {
	out := reportFromMeta(rep.Meta, "detect", scale)
	out.LoggedMemOps = rep.MemOpsAnalyzed
	if rep.Meta.MemOps > 0 {
		out.ESR = float64(rep.MemOpsAnalyzed) / float64(rep.Meta.MemOps)
	}
	out.Races = raceRows(rep, nil, nil)
	return out
}

func reportFromMeta(meta trace.Meta, source string, scale int) *ledger.RunReport {
	out := &ledger.RunReport{
		Schema:      ledger.ReportSchema,
		Module:      meta.Module,
		Sampler:     meta.Primary,
		Seed:        meta.Seed,
		Scale:       scale,
		Source:      source,
		Threads:     meta.Threads,
		Instrs:      meta.Instrs,
		MemOps:      meta.MemOps,
		StackMemOps: meta.StackMemOps,
		SyncOps:     meta.SyncOps,
		Cycles:      meta.Cycles,
		BaseCycles:  meta.BaseCycles,
		LoggedBytes: meta.LoggedBytes,
	}
	if out.Sampler == "" {
		out.Sampler = "TL-Ad"
	}
	if meta.BaseCycles > 0 {
		out.OverheadX = float64(meta.Cycles) / float64(meta.BaseCycles)
	}
	return out
}

func coverageRows(p *coverprof.Profile) []ledger.FuncCoverage {
	rows := make([]ledger.FuncCoverage, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		rows = append(rows, ledger.FuncCoverage{
			Func:            f.Name,
			Threads:         f.Threads,
			Calls:           f.Calls,
			Sampled:         f.Sampled,
			Bursts:          f.Bursts,
			CurRate:         f.CurRate,
			Trajectory:      f.Trajectory,
			MemExec:         f.MemExec,
			MemLogged:       f.MemLogged,
			ESR:             f.MemESR(),
			UnsampledStreak: f.UnsampledStreak,
		})
	}
	return rows
}

// raceRows converts a Report's races, attributing each side to the
// distinct sampling bursts that captured its dynamic occurrences when a
// coverage collector and the online detection result are available.
// Attribution is valid because the log preserves per-thread order and
// the online pass analyzes every logged access, so the detector's
// per-thread memory ordinals equal the runtime's logged-memory ordinals.
// When the detection pass captured evidence (hb.Options.Evidence), each
// row also carries the race's evidence digest so the ledger can diff
// evidence across runs.
func raceRows(rep *Report, cov *coverprof.Collector, res *hb.Result) []ledger.RaceReport {
	var digests map[string]string
	if res != nil {
		digests = forensics.EvidenceDigests(res.Races)
	}
	type burstSets struct{ first, second map[uint32]bool }
	attrib := make(map[string]*burstSets)
	if cov != nil && res != nil {
		for _, dr := range res.Races {
			aPC, aTID, aSeq := dr.PrevPC, dr.PrevTID, dr.PrevSeq
			bPC, bTID, bSeq := dr.CurPC, dr.CurTID, dr.CurSeq
			if bPC.Less(aPC) {
				aPC, bPC = bPC, aPC
				aTID, bTID = bTID, aTID
				aSeq, bSeq = bSeq, aSeq
			}
			key := aPC.String() + "|" + bPC.String()
			bs := attrib[key]
			if bs == nil {
				bs = &burstSets{first: make(map[uint32]bool), second: make(map[uint32]bool)}
				attrib[key] = bs
			}
			if b, ok := cov.BurstOf(aTID, aPC.Func, aSeq); ok {
				bs.first[b] = true
			}
			if b, ok := cov.BurstOf(bTID, bPC.Func, bSeq); ok {
				bs.second[b] = true
			}
		}
	}
	rows := make([]ledger.RaceReport, 0, len(rep.Races))
	for _, rc := range rep.Races {
		row := ledger.RaceReport{
			First:       rc.First,
			Second:      rc.Second,
			Count:       rc.Count,
			WriteWrite:  rc.WriteWrite,
			ReadWrite:   rc.ReadWrite,
			Rare:        rc.Rare,
			Unconfirmed: rc.Unconfirmed,
		}
		key := lir.PC{Func: rc.FirstPC.Func, Index: rc.FirstPC.Index}.String() +
			"|" + lir.PC{Func: rc.SecondPC.Func, Index: rc.SecondPC.Index}.String()
		if bs := attrib[key]; bs != nil {
			row.FirstBursts = sortedBursts(bs.first)
			row.SecondBursts = sortedBursts(bs.second)
		}
		row.EvidenceDigest = digests[key]
		rows = append(rows, row)
	}
	return rows
}

func sortedBursts(m map[uint32]bool) []uint32 {
	if len(m) == 0 {
		return nil
	}
	out := make([]uint32, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
