package literace

import (
	"bytes"
	"strings"
	"testing"
)

// runWithReport assembles, instruments, and runs racyProgram with coverage
// and online detection, returning the run-report artifact.
func runWithReport(t *testing.T, sampler string, seed int64, scale int) (*Program, *RunResult, []byte) {
	t.Helper()
	p, err := Assemble("racy", racyProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Instrument(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(Config{Sampler: sampler, Seed: seed, Coverage: true, Online: true})
	if err != nil {
		t.Fatal(err)
	}
	rr := p.BuildRunReport(res, res.OnlineReport, scale)
	if err := rr.Validate(); err != nil {
		t.Fatalf("built report invalid: %v", err)
	}
	b, err := rr.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	return p, res, b
}

// TestRunReportByteStable is the artifact's core invariant: two runs of
// the same (module, sampler, scale, seed) must produce identical report
// bytes, so CI can diff regenerated reports.
func TestRunReportByteStable(t *testing.T) {
	_, _, b1 := runWithReport(t, "TL-Ad", 7, 2)
	_, _, b2 := runWithReport(t, "TL-Ad", 7, 2)
	if !bytes.Equal(b1, b2) {
		t.Errorf("same (sampler, seed, scale) produced different report bytes:\n%s\n---\n%s", b1, b2)
	}
	_, _, b3 := runWithReport(t, "TL-Ad", 8, 2)
	if bytes.Equal(b1, b3) {
		t.Error("different seeds produced identical reports (suspicious)")
	}
}

// TestRunReportContents checks the assembled artifact end to end: run
// metadata, the coverage table, and race rows with burst attribution
// under full sampling.
func TestRunReportContents(t *testing.T) {
	p, res, raw := runWithReport(t, "Full", 1, 0)
	rr := p.BuildRunReport(res, res.OnlineReport, 0)

	if rr.Source != "run" || rr.Module != "racy" || rr.Sampler != "Full" || rr.Seed != 1 {
		t.Errorf("report identity: %s/%s seed %d source %s", rr.Module, rr.Sampler, rr.Seed, rr.Source)
	}
	if rr.ESR != 1 || rr.LoggedMemOps != res.LoggedMemOps || rr.LoggedMemOps == 0 {
		t.Errorf("ESR %v logged %d (res %d)", rr.ESR, rr.LoggedMemOps, res.LoggedMemOps)
	}
	if len(rr.Coverage) == 0 {
		t.Fatal("no coverage rows")
	}
	var touch bool
	for _, f := range rr.Coverage {
		if f.Func == "touch" {
			touch = true
			if f.Calls == 0 || f.MemExec == 0 || f.MemLogged == 0 {
				t.Errorf("touch coverage row: %+v", f)
			}
			// Full sampling: every invocation sampled, every executed
			// tracked op logged.
			if f.Sampled != f.Calls {
				t.Errorf("touch sampled %d of %d calls under Full", f.Sampled, f.Calls)
			}
		}
	}
	if !touch {
		t.Errorf("no coverage row for touch; rows: %s", raw)
	}
	if len(rr.Races) == 0 {
		t.Fatal("planted race missing from report")
	}
	for _, rc := range rr.Races {
		if !strings.HasPrefix(rc.First, "touch:") || !strings.HasPrefix(rc.Second, "touch:") {
			t.Errorf("race names unresolved: %+v", rc)
		}
		// Under Full + Online + Coverage, every racing access must be
		// attributed to a burst window.
		if len(rc.FirstBursts) == 0 || len(rc.SecondBursts) == 0 {
			t.Errorf("race lacks burst attribution: %+v", rc)
		}
	}
}

// TestBuildDetectReport exercises the offline-source artifact: no
// coverage table, no burst attribution, ESR from the log's analyzed
// fraction.
func TestBuildDetectReport(t *testing.T) {
	p, err := Assemble("racy", racyProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Instrument(); err != nil {
		t.Fatal(err)
	}
	res, rep, err := p.RunAndDetect(Config{Sampler: "Full", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rr := BuildDetectReport(rep, 0)
	if err := rr.Validate(); err != nil {
		t.Fatal(err)
	}
	if rr.Source != "detect" {
		t.Errorf("source = %q", rr.Source)
	}
	if len(rr.Coverage) != 0 {
		t.Errorf("detect report has a coverage table: %+v", rr.Coverage)
	}
	if rr.ESR != res.EffectiveRate {
		t.Errorf("detect ESR %v, run ESR %v", rr.ESR, res.EffectiveRate)
	}
	if len(rr.Races) == 0 {
		t.Error("planted race missing")
	}
	for _, rc := range rr.Races {
		if len(rc.FirstBursts) != 0 || len(rc.SecondBursts) != 0 {
			t.Errorf("offline report has burst attribution: %+v", rc)
		}
	}
}
