package literace

import (
	"bytes"
	"testing"

	"literace/internal/trace"
)

// TestSchedTraceLogged runs with SchedTrace on and checks that the log
// carries balanced, verifiable scheduler slice markers and that race
// detection still works on a log containing them.
func TestSchedTraceLogged(t *testing.T) {
	p, _ := Assemble("racy", racyProgram)
	if _, err := p.Instrument(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.Run(Config{Sampler: "Full", Seed: 1, SchedTrace: true, LogTo: &buf}); err != nil {
		t.Fatal(err)
	}

	if err := VerifyLog(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("sched-traced log fails verification: %v", err)
	}
	log, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	begins, ends := 0, 0
	for _, evs := range log.Threads {
		lastTS := uint64(0)
		for _, e := range evs {
			if !e.Kind.IsSched() {
				continue
			}
			switch e.Op {
			case trace.OpSliceBegin:
				begins++
			case trace.OpSliceEnd, trace.OpSlicePreempt:
				ends++
			default:
				t.Fatalf("unexpected sched op %v", e.Op)
			}
			if e.TS < lastTS {
				t.Fatalf("sched instruction clock went backwards: %d after %d", e.TS, lastTS)
			}
			lastTS = e.TS
		}
	}
	if begins == 0 || begins != ends {
		t.Errorf("slice markers unbalanced: %d begins, %d ends", begins, ends)
	}

	rep, err := Detect(bytes.NewReader(buf.Bytes()), p.FuncName)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Error("planted race lost when sched markers are present")
	}

	// The same program without SchedTrace must log no sched events.
	var plain bytes.Buffer
	if _, err := p.Run(Config{Sampler: "Full", Seed: 1, LogTo: &plain}); err != nil {
		t.Fatal(err)
	}
	plainLog, err := trace.ReadAll(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, evs := range plainLog.Threads {
		for _, e := range evs {
			if e.Kind.IsSched() {
				t.Fatal("sched event logged without SchedTrace")
			}
		}
	}
}
